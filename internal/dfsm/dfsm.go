// Package dfsm builds and drives the prefix-matching deterministic finite
// state machine of the paper's §3.1 (Figures 7–9).
//
// Each hot data stream v is split into a head (the first headLen references,
// which must be observed to trigger prefetching) and a tail (the remaining
// addresses, which are prefetched on a complete head match). Rather than
// matching each stream independently, a single DFSM tracks the matching
// prefixes of all hot data streams simultaneously: a state is a set of
// [stream, seen] elements, and the transition function is
//
//	d(s,a) = {[v,n+1] | n < headLen && [v,n] in s && a == v_{n+1}}
//	         union {[w,1] | a == w_1}
//
// States whose element sets contain a completed head ([v, headLen]) are
// annotated with the prefetch addresses of v's tail. The DFSM is built with
// the lazy work-list algorithm of Figure 9; the number of reachable states
// is usually close to headLen*n+1 rather than the exponential worst case.
//
// Because Step models code injected on the program's own loads (§3.2 charges
// every executed comparison), the built machine is compiled into flat
// per-pc transition tables — sorted address arms over state-indexed entry
// runs — so that driving it is array indexing with no map lookups and no
// allocations unless a prefetch fires. The comparison counts Step reports
// are those of the paper's Figure 7 generated code and are unchanged by the
// compilation.
package dfsm

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"

	"hotprefetch/internal/ref"
)

// Stream is one hot data stream prepared for prefix matching.
type Stream struct {
	Refs []ref.Ref // the complete stream
	Head []ref.Ref // Refs[:headLen]
	Tail []uint64  // deduplicated addresses of Refs[headLen:]
	Heat uint64
}

// Split prepares a stream for matching with the given head length,
// deduplicating tail addresses (the paper prefetches each remaining stream
// address once: for v = abacadae with head aba it prefetches c, a, d, e).
func Split(refs []ref.Ref, heat uint64, headLen int) Stream {
	s := Stream{Refs: refs, Heat: heat}
	if len(refs) <= headLen {
		s.Head = refs
		return s
	}
	s.Head = refs[:headLen]
	seen := make(map[uint64]struct{})
	for _, r := range refs[headLen:] {
		if _, dup := seen[r.Addr]; !dup {
			seen[r.Addr] = struct{}{}
			s.Tail = append(s.Tail, r.Addr)
		}
	}
	return s
}

// Element is one [stream, seen] pair of a DFSM state: the first seen
// references of stream have been matched.
type Element struct {
	Stream int // index into DFSM.Streams
	Seen   int // 1..headLen
}

// State is a reachable DFSM state.
type State struct {
	ID       int
	Elements []Element // canonically sorted
	// Prefetches lists the tail addresses of every stream whose head is
	// completely matched in this state; they are issued on entry.
	Prefetches []uint64
}

// appendKey appends the canonical identity of an element set: 8 bytes per
// element, fixed-width little-endian (stream, seen) pairs. Integer encoding
// keeps state interning free of fmt formatting garbage during Build.
func appendKey(dst []byte, elems []Element) []byte {
	for _, e := range elems {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Stream))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Seen))
	}
	return dst
}

// transKey identifies a transition source: a state and an observed data
// reference.
type transKey struct {
	state int
	r     ref.Ref
}

// DFSM is the combined prefix-matching machine for a set of hot data
// streams.
type DFSM struct {
	Streams []Stream
	HeadLen int
	States  []*State

	// trans is the explicit transition relation; Next and WriteDOT read it.
	// The matching hot path never touches it: Step runs on the compiled
	// tables below.
	trans map[transKey]*State

	// Compiled detection tables, the flat layout of the comparison
	// structure the injected code executes per instrumented pc (paper
	// Figure 7): an outer if-chain over addresses (arms), each with an
	// inner if-chain over source states (entries) and a restart default.
	//
	// pcDense maps pc-pcMin straight to the pc's [start,end) arm range
	// when the instrumented pc range is dense enough ({0,0} = not
	// instrumented); otherwise pcKeys holds the sorted instrumented pcs,
	// Step binary-searches, and pcSpan[slot] holds the range.
	pcMin   int
	pcDense [][2]int32
	pcKeys  []int
	pcSpan  [][2]int32
	arms    []addrArm
	chains  []stateEntry
}

// addrArm is one arm of the outer "if (accessing addr)" chain, its inner
// state compares stored as chains[eStart:eEnd].
type addrArm struct {
	addr         uint64
	restart      int32 // d(start, addr) state ID, or -1 (arm's else branch)
	eStart, eEnd int32
}

type stateEntry struct {
	from, to int32
}

// Build constructs the DFSM for the given streams with the lazy work-list
// algorithm of paper Figure 9. Streams no longer than headLen carry no
// prefetchable tail and are dropped.
func Build(streams []Stream, headLen int) *DFSM {
	if headLen < 1 {
		panic("dfsm: headLen must be >= 1")
	}
	var usable []Stream
	for _, s := range streams {
		if len(s.Refs) > headLen && len(s.Tail) > 0 {
			usable = append(usable, s)
		}
	}
	d := &DFSM{
		Streams: usable,
		HeadLen: headLen,
		trans:   make(map[transKey]*State),
	}

	states := map[string]*State{}
	start := &State{ID: 0}
	states[""] = start
	d.States = append(d.States, start)
	workList := []*State{start}

	var keyBuf []byte
	intern := func(elems []Element) (*State, bool) {
		keyBuf = appendKey(keyBuf[:0], elems)
		if s, ok := states[string(keyBuf)]; ok {
			return s, false
		}
		s := &State{ID: len(d.States), Elements: elems}
		for _, e := range elems {
			if e.Seen == headLen {
				s.Prefetches = append(s.Prefetches, d.Streams[e.Stream].Tail...)
			}
		}
		states[string(keyBuf)] = s
		d.States = append(d.States, s)
		return s, true
	}

	for len(workList) > 0 {
		s := workList[len(workList)-1]
		workList = workList[:len(workList)-1]

		// Candidate symbols: the next reference of each in-progress element,
		// plus the first reference of every stream (Figure 9's two loops).
		cands := make([]ref.Ref, 0, len(s.Elements)+len(d.Streams))
		seenCand := map[ref.Ref]struct{}{}
		addCand := func(r ref.Ref) {
			if _, dup := seenCand[r]; !dup {
				seenCand[r] = struct{}{}
				cands = append(cands, r)
			}
		}
		for _, e := range s.Elements {
			if e.Seen < headLen {
				addCand(d.Streams[e.Stream].Head[e.Seen])
			}
		}
		for _, st := range d.Streams {
			addCand(st.Head[0])
		}

		for _, a := range cands {
			tk := transKey{state: s.ID, r: a}
			if _, exists := d.trans[tk]; exists {
				continue
			}
			var next []Element
			for _, e := range s.Elements {
				if e.Seen < headLen && d.Streams[e.Stream].Head[e.Seen] == a {
					next = append(next, Element{Stream: e.Stream, Seen: e.Seen + 1})
				}
			}
			for wi, st := range d.Streams {
				if st.Head[0] == a && !hasElement(next, wi, 1) {
					next = append(next, Element{Stream: wi, Seen: 1})
				}
			}
			if len(next) == 0 {
				continue // implicit transition to the start state
			}
			sortElements(next)
			target, fresh := intern(next)
			d.trans[tk] = target
			if fresh {
				workList = append(workList, target)
			}
		}
	}

	d.compile()
	return d
}

func hasElement(elems []Element, stream, seen int) bool {
	for _, e := range elems {
		if e.Stream == stream && e.Seen == seen {
			return true
		}
	}
	return false
}

func sortElements(elems []Element) {
	sort.Slice(elems, func(i, j int) bool {
		if elems[i].Stream != elems[j].Stream {
			return elems[i].Stream < elems[j].Stream
		}
		return elems[i].Seen < elems[j].Seen
	})
}

// compile lays out the per-pc comparison structure of the injected detection
// code as flat arrays. Hotter streams' addresses come first, modelling the
// paper's "sort the if-branches in such a way that more likely cases come
// first". Within an address arm, only extension transitions need explicit
// state compares; the restart transition d(start, a) is the arm's default.
func (d *DFSM) compile() {
	type groupBuild struct {
		addr    uint64
		heat    uint64
		entries []stateEntry
		restart int32
	}
	byPC := map[int]map[ref.Ref]*groupBuild{}
	for tk, to := range d.trans {
		groups := byPC[tk.r.PC]
		if groups == nil {
			groups = map[ref.Ref]*groupBuild{}
			byPC[tk.r.PC] = groups
		}
		g := groups[tk.r]
		if g == nil {
			g = &groupBuild{addr: tk.r.Addr, restart: -1}
			groups[tk.r] = g
		}
		for _, e := range to.Elements {
			if h := d.Streams[e.Stream].Heat; h > g.heat {
				g.heat = h
			}
		}
		if tk.state == 0 {
			g.restart = int32(to.ID) // d(start, a), the arm's else branch
		} else {
			g.entries = append(g.entries, stateEntry{from: int32(tk.state), to: int32(to.ID)})
		}
	}

	pcs := make([]int, 0, len(byPC))
	for pc := range byPC {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)

	d.pcKeys = pcs
	d.pcSpan = make([][2]int32, len(pcs))
	for slot, pc := range pcs {
		groups := byPC[pc]
		list := make([]*groupBuild, 0, len(groups))
		for _, g := range groups {
			sort.Slice(g.entries, func(i, j int) bool {
				return g.entries[i].from < g.entries[j].from
			})
			list = append(list, g)
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].heat != list[j].heat {
				return list[i].heat > list[j].heat
			}
			return list[i].addr < list[j].addr
		})
		armStart := int32(len(d.arms))
		for _, g := range list {
			eStart := int32(len(d.chains))
			d.chains = append(d.chains, g.entries...)
			d.arms = append(d.arms, addrArm{
				addr:    g.addr,
				restart: g.restart,
				eStart:  eStart,
				eEnd:    int32(len(d.chains)),
			})
		}
		d.pcSpan[slot] = [2]int32{armStart, int32(len(d.arms))}
	}

	// Dense pc index when the instrumented pcs span a reasonable range
	// (pcs are instruction indices, so this is the overwhelmingly common
	// case); otherwise Step binary-searches pcKeys. A pc's arm range is
	// never empty, so the zero span marks un-instrumented pcs.
	if len(pcs) > 0 {
		span := pcs[len(pcs)-1] - pcs[0] + 1
		if span <= 1<<16 || span <= 64*len(pcs) {
			d.pcMin = pcs[0]
			d.pcDense = make([][2]int32, span)
			for slot, pc := range pcs {
				d.pcDense[pc-d.pcMin] = d.pcSpan[slot]
			}
		}
	}
}

// spanOf returns pc's [start,end) arm range, zero if pc is not instrumented.
// The dense fast path is small enough to inline into Step.
func (d *DFSM) spanOf(pc int) [2]int32 {
	if d.pcDense != nil {
		if i := pc - d.pcMin; uint(i) < uint(len(d.pcDense)) {
			return d.pcDense[i]
		}
		return [2]int32{}
	}
	return d.spanSearch(pc)
}

// spanSearch is the sparse-pc fallback.
func (d *DFSM) spanSearch(pc int) [2]int32 {
	// Binary search over the sorted instrumented pcs.
	lo, hi := 0, len(d.pcKeys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.pcKeys[mid] < pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.pcKeys) && d.pcKeys[lo] == pc {
		return d.pcSpan[lo]
	}
	return [2]int32{}
}

// NumStates returns the number of reachable states, including the start
// state.
func (d *DFSM) NumStates() int { return len(d.States) }

// NumTransitions returns the number of explicit transitions (Table 2's
// "checks" column counts the injected prefix-match checks that implement
// them).
func (d *DFSM) NumTransitions() int { return len(d.trans) }

// Start returns the start state (nothing matched).
func (d *DFSM) Start() *State { return d.States[0] }

// Next returns d(s, r), with the implicit reset to the start state for
// undefined transitions.
func (d *DFSM) Next(s *State, r ref.Ref) *State {
	if t, ok := d.trans[transKey{state: s.ID, r: r}]; ok {
		return t
	}
	return d.States[0]
}

// PCs returns the sorted set of instruction PCs at which detection code must
// be injected — every pc occurring in any stream head.
func (d *DFSM) PCs() []int {
	set := map[int]struct{}{}
	for _, s := range d.Streams {
		for _, r := range s.Head {
			set[r.PC] = struct{}{}
		}
	}
	pcs := make([]int, 0, len(set))
	for pc := range set {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}

// String renders the DFSM's states and transitions for debugging.
func (d *DFSM) String() string {
	var b strings.Builder
	for _, s := range d.States {
		fmt.Fprintf(&b, "state %d {", s.ID)
		for i, e := range s.Elements {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "[%d,%d]", e.Stream, e.Seen)
		}
		b.WriteString("}")
		if len(s.Prefetches) > 0 {
			fmt.Fprintf(&b, " prefetch %d addrs", len(s.Prefetches))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Matcher drives a DFSM over a stream of observed data references at the
// injected check sites. It is the runtime counterpart of the generated code
// in paper Figure 7. The compiled tables are cached in the matcher itself so
// Step touches one object, not the DFSM behind it.
type Matcher struct {
	d       *DFSM
	cur     int32 // current state ID
	pcMin   int
	pcDense [][2]int32
	arms    []addrArm
	chains  []stateEntry
	states  []*State
}

// NewMatcher returns a matcher positioned at the start state.
func NewMatcher(d *DFSM) *Matcher {
	return &Matcher{
		d:       d,
		pcMin:   d.pcMin,
		pcDense: d.pcDense,
		arms:    d.arms,
		chains:  d.chains,
		states:  d.States,
	}
}

// State returns the current state.
func (m *Matcher) State() *State { return m.d.States[m.cur] }

// Reset returns the matcher to the start state.
func (m *Matcher) Reset() { m.cur = 0 }

// Step consumes one data reference observed at an instrumented pc. It
// returns the addresses to prefetch (non-nil exactly when a stream head
// completes) and the number of comparisons the injected check chain
// executed, which the caller charges as detection overhead.
//
// The comparison count follows the structure of the generated code in paper
// Figure 7: an outer if-chain over the addresses checked at this pc, then an
// inner if-chain over source states, with the restart transition as the
// arm's else branch. Step performs no allocations and no map lookups; the
// returned prefetch slice aliases the machine's state table.
func (m *Matcher) Step(r ref.Ref) (prefetch []uint64, comparisons int) {
	var span [2]int32
	if m.pcDense != nil {
		if i := r.PC - m.pcMin; uint(i) < uint(len(m.pcDense)) {
			span = m.pcDense[i]
		}
	} else {
		span = m.d.spanSearch(r.PC)
	}
	if span[0] == span[1] {
		// Un-instrumented pc: no arms; the single failed address comparison.
		m.cur = 0
		return nil, 1
	}
	return m.stepArms(r.Addr, span)
}

// stepArms walks the address arms of one instrumented pc (the out-of-line
// part of Step, keeping Step itself inlinable for the frequent
// un-instrumented case).
func (m *Matcher) stepArms(addr uint64, span [2]int32) (prefetch []uint64, comparisons int) {
	prev := m.cur
	for ai := span[0]; ai < span[1]; ai++ {
		arm := &m.arms[ai]
		comparisons++ // address compare
		if arm.addr != addr {
			continue
		}
		next := arm.restart // else branch: d(start, a), possibly -1
		for ei := arm.eStart; ei < arm.eEnd; ei++ {
			comparisons++ // state compare
			if m.chains[ei].from == m.cur {
				next = m.chains[ei].to
				break
			}
		}
		if next < 0 {
			next = 0
		}
		m.cur = next
		if prev != m.cur {
			if p := m.states[m.cur].Prefetches; len(p) > 0 {
				return p, comparisons
			}
		}
		return nil, comparisons
	}
	// Address matched no arm: d(s,a) = {}, reset to start (the final
	// "else v.seen = 0" of Figure 7).
	m.cur = 0
	return nil, comparisons
}

// WriteDOT renders the DFSM in Graphviz DOT format, in the style of the
// paper's Figure 8: nodes are states labelled with their element sets,
// edges are transitions labelled with the observed reference, and states
// with prefetch annotations are drawn doubled.
func (d *DFSM) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph dfsm {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n")
	for _, s := range d.States {
		label := "{}"
		if len(s.Elements) > 0 {
			var eb strings.Builder
			eb.WriteByte('{')
			for i, e := range s.Elements {
				if i > 0 {
					eb.WriteByte(' ')
				}
				fmt.Fprintf(&eb, "[v%d,%d]", e.Stream, e.Seen)
			}
			eb.WriteByte('}')
			label = eb.String()
		}
		shape := "circle"
		if len(s.Prefetches) > 0 {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [label=%q shape=%s];\n", s.ID, label, shape)
	}
	// Deterministic edge order.
	type edge struct {
		from int
		r    ref.Ref
		to   int
	}
	edges := make([]edge, 0, len(d.trans))
	for tk, to := range d.trans {
		edges = append(edges, edge{from: tk.state, r: tk.r, to: to.ID})
	}
	sort.Slice(edges, func(i, j int) bool {
		a, e := edges[i], edges[j]
		if a.from != e.from {
			return a.from < e.from
		}
		if a.r.PC != e.r.PC {
			return a.r.PC < e.r.PC
		}
		if a.r.Addr != e.r.Addr {
			return a.r.Addr < e.r.Addr
		}
		return a.to < e.to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"pc%d:0x%x\"];\n", e.from, e.to, e.r.PC, e.r.Addr)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
