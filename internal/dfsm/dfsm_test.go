package dfsm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hotprefetch/internal/ref"
)

// refOf maps a letter to a distinct data reference, mirroring the paper's
// examples where each symbol is one (pc, addr) pair.
func refOf(c byte) ref.Ref {
	return ref.Ref{PC: int(c), Addr: uint64(c) * 8}
}

func refsOf(s string) []ref.Ref {
	rs := make([]ref.Ref, len(s))
	for i := 0; i < len(s); i++ {
		rs[i] = refOf(s[i])
	}
	return rs
}

// TestPaperFigure7SingleStream drives the worked example of §3.1: hot data
// stream v = abacadae with headLen = 3. Detecting "aba" must trigger
// prefetches of c.addr, a.addr, d.addr, e.addr (the tail, deduplicated).
func TestPaperFigure7SingleStream(t *testing.T) {
	v := Split(refsOf("abacadae"), 100, 3)
	if len(v.Head) != 3 || len(v.Tail) != 4 {
		t.Fatalf("head/tail = %d/%d, want 3/4", len(v.Head), len(v.Tail))
	}
	want := []uint64{refOf('c').Addr, refOf('a').Addr, refOf('d').Addr, refOf('e').Addr}
	for i, a := range want {
		if v.Tail[i] != a {
			t.Fatalf("tail[%d] = %d, want %d", i, v.Tail[i], a)
		}
	}

	d := Build([]Stream{v}, 3)
	m := NewMatcher(d)
	var fired []uint64
	for _, r := range refsOf("aba") {
		pf, comp := m.Step(r)
		if comp < 1 {
			t.Error("each step must cost at least one comparison")
		}
		fired = append(fired, pf...)
	}
	if len(fired) != 4 {
		t.Fatalf("prefetches = %v, want 4 addresses after matching aba", fired)
	}
	for i, a := range want {
		if fired[i] != a {
			t.Errorf("prefetch[%d] = %d, want %d", i, fired[i], a)
		}
	}
}

// TestPaperFigure8DFSM verifies the combined DFSM for v = abacadae and
// w = bbghij with headLen = 3 (paper Figure 8): the reachable states are
// {}, {[v,1]}, {[w,1]}, {[v,2],[w,1]}, {[w,1],[w,2]}, {[v,1],[v,3]}, {[w,3]}.
func TestPaperFigure8DFSM(t *testing.T) {
	v := Split(refsOf("abacadae"), 100, 3)
	w := Split(refsOf("bbghij"), 90, 3)
	d := Build([]Stream{v, w}, 3)

	if d.NumStates() != 7 {
		t.Fatalf("states = %d, want 7:\n%s", d.NumStates(), d)
	}

	// Walk the machine through v's head and check element sets.
	m := NewMatcher(d)
	m.Step(refOf('a'))
	assertElements(t, m.State(), []Element{{0, 1}})
	m.Step(refOf('b'))
	assertElements(t, m.State(), []Element{{0, 2}, {1, 1}})
	pf, _ := m.Step(refOf('a'))
	assertElements(t, m.State(), []Element{{0, 1}, {0, 3}})
	if len(pf) != 4 {
		t.Errorf("completing v.head must prefetch its 4 tail addresses, got %v", pf)
	}

	// From {[v,1],[v,3]}, b leads back to {[v,2],[w,1]}.
	m.Step(refOf('b'))
	assertElements(t, m.State(), []Element{{0, 2}, {1, 1}})

	// Walk w's head: b b g.
	m.Reset()
	m.Step(refOf('b'))
	assertElements(t, m.State(), []Element{{1, 1}})
	m.Step(refOf('b'))
	assertElements(t, m.State(), []Element{{1, 1}, {1, 2}})
	pf, _ = m.Step(refOf('g'))
	assertElements(t, m.State(), []Element{{1, 3}})
	if len(pf) != 3 {
		t.Errorf("completing w.head must prefetch h,i,j, got %v", pf)
	}

	// An unrelated reference resets to the start state.
	m.Step(refOf('z'))
	if m.State().ID != 0 {
		t.Error("unmatched reference must reset to the start state")
	}
}

func assertElements(t *testing.T, s *State, want []Element) {
	t.Helper()
	if len(s.Elements) != len(want) {
		t.Fatalf("state %d elements = %v, want %v", s.ID, s.Elements, want)
	}
	for i := range want {
		if s.Elements[i] != want[i] {
			t.Fatalf("state %d elements = %v, want %v", s.ID, s.Elements, want)
		}
	}
}

func TestStreamsTooShortAreDropped(t *testing.T) {
	short := Split(refsOf("ab"), 10, 3)   // shorter than headLen
	exact := Split(refsOf("abc"), 10, 3)  // no tail
	good := Split(refsOf("abcde"), 10, 3) // usable
	d := Build([]Stream{short, exact, good}, 3)
	if len(d.Streams) != 1 {
		t.Errorf("usable streams = %d, want 1", len(d.Streams))
	}
}

func TestStateCountNearLinear(t *testing.T) {
	// n streams with disjoint alphabets: the paper observes close to
	// headLen*n+1 states rather than the exponential worst case.
	var streams []Stream
	n, headLen := 10, 3
	for i := 0; i < n; i++ {
		rs := make([]ref.Ref, 15)
		for j := range rs {
			rs[j] = ref.Ref{PC: 1000*i + j, Addr: uint64(1000*i + j)}
		}
		streams = append(streams, Split(rs, 10, headLen))
	}
	d := Build(streams, headLen)
	want := headLen*n + 1
	if d.NumStates() != want {
		t.Errorf("states = %d, want %d for disjoint streams", d.NumStates(), want)
	}
	if d.NumTransitions() < n*headLen {
		t.Errorf("transitions = %d, want >= %d", d.NumTransitions(), n*headLen)
	}
}

func TestPCsCoversHeads(t *testing.T) {
	v := Split(refsOf("abcxyz"), 10, 3)
	w := Split(refsOf("defxyz"), 10, 3)
	d := Build([]Stream{v, w}, 3)
	pcs := d.PCs()
	want := map[int]bool{'a': true, 'b': true, 'c': true, 'd': true, 'e': true, 'f': true}
	if len(pcs) != len(want) {
		t.Fatalf("PCs = %v, want the 6 head pcs", pcs)
	}
	for _, pc := range pcs {
		if !want[pc] {
			t.Errorf("unexpected pc %d", pc)
		}
	}
	for i := 1; i < len(pcs); i++ {
		if pcs[i] <= pcs[i-1] {
			t.Error("PCs must be sorted")
		}
	}
}

func TestSamePCDifferentAddr(t *testing.T) {
	// Two streams whose heads share a pc but differ in address (the common
	// case: one load instruction walking different objects).
	v := []ref.Ref{{PC: 1, Addr: 100}, {PC: 2, Addr: 200}, {PC: 1, Addr: 300}, {PC: 3, Addr: 400}}
	w := []ref.Ref{{PC: 1, Addr: 500}, {PC: 2, Addr: 600}, {PC: 1, Addr: 700}, {PC: 3, Addr: 800}}
	d := Build([]Stream{Split(v, 10, 2), Split(w, 9, 2)}, 2)

	m := NewMatcher(d)
	m.Step(ref.Ref{PC: 1, Addr: 100})
	m.Step(ref.Ref{PC: 2, Addr: 200})
	if len(m.State().Prefetches) == 0 {
		t.Error("v's head should have completed")
	}
	m.Reset()
	m.Step(ref.Ref{PC: 1, Addr: 500})
	pf, _ := m.Step(ref.Ref{PC: 2, Addr: 600})
	if len(pf) != 2 || pf[0] != 700 {
		t.Errorf("w's completion should prefetch 700,800; got %v", pf)
	}
	// Same pc, unknown address: reset.
	m.Step(ref.Ref{PC: 1, Addr: 999})
	if m.State().ID != 0 {
		t.Error("unknown address at a known pc must reset")
	}
}

// referenceMatcher is a direct implementation of the transition function
// d(s,a) from §3.1, used as the specification for the lazily-built DFSM.
type referenceMatcher struct {
	streams []Stream
	headLen int
	cur     map[Element]bool
}

func (rm *referenceMatcher) step(a ref.Ref) (fired bool) {
	next := map[Element]bool{}
	for e := range rm.cur {
		if e.Seen < rm.headLen && rm.streams[e.Stream].Head[e.Seen] == a {
			next[Element{e.Stream, e.Seen + 1}] = true
		}
	}
	for wi, w := range rm.streams {
		if w.Head[0] == a {
			next[Element{wi, 1}] = true
		}
	}
	changed := len(next) != len(rm.cur)
	if !changed {
		for e := range next {
			if !rm.cur[e] {
				changed = true
				break
			}
		}
	}
	complete := false
	for e := range next {
		if e.Seen == rm.headLen {
			complete = true
		}
	}
	rm.cur = next
	return changed && complete
}

// Property: the lazily-constructed DFSM behaves exactly like the subset
// construction applied directly to the definition — same element sets, same
// prefetch firing — on random traces drawn from the streams' alphabet.
func TestPropertyDFSMMatchesSubsetConstruction(t *testing.T) {
	f := func(seed int64, headLen8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		headLen := int(headLen8%3) + 1

		// Random streams over a small shared alphabet to force overlap.
		alphabet := make([]ref.Ref, 6)
		for i := range alphabet {
			alphabet[i] = ref.Ref{PC: i % 3, Addr: uint64(i) * 16} // shared pcs
		}
		nStreams := r.Intn(4) + 1
		streams := make([]Stream, 0, nStreams)
		for i := 0; i < nStreams; i++ {
			length := headLen + 1 + r.Intn(5)
			rs := make([]ref.Ref, length)
			for j := range rs {
				rs[j] = alphabet[r.Intn(len(alphabet))]
			}
			streams = append(streams, Split(rs, uint64(10+i), headLen))
		}

		d := Build(streams, headLen)
		m := NewMatcher(d)
		rm := &referenceMatcher{streams: d.Streams, headLen: headLen, cur: map[Element]bool{}}

		for step := 0; step < 200; step++ {
			a := alphabet[r.Intn(len(alphabet))]
			pf, _ := m.Step(a)
			wantFired := rm.step(a)
			if (len(pf) > 0) != wantFired {
				return false
			}
			// Element sets must agree.
			if len(m.State().Elements) != len(rm.cur) {
				return false
			}
			for _, e := range m.State().Elements {
				if !rm.cur[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a prefetch fires exactly when the last headLen observed
// references equal some stream's head and the machine state changed
// (re-entering the same state does not re-issue).
func TestPropertyFireMatchesWindow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const headLen = 3
		alphabet := refsOf("abcdef")
		var streams []Stream
		for i := 0; i < 3; i++ {
			rs := make([]ref.Ref, headLen+2+r.Intn(4))
			for j := range rs {
				rs[j] = alphabet[r.Intn(len(alphabet))]
			}
			streams = append(streams, Split(rs, uint64(5+i), headLen))
		}
		d := Build(streams, headLen)
		m := NewMatcher(d)

		var window []ref.Ref
		prevID := m.State().ID
		for step := 0; step < 300; step++ {
			a := alphabet[r.Intn(len(alphabet))]
			window = append(window, a)
			if len(window) > headLen {
				window = window[1:]
			}
			pf, _ := m.Step(a)
			windowMatches := false
			if len(window) == headLen {
				for _, s := range d.Streams {
					match := true
					for j := range s.Head {
						if s.Head[j] != window[j] {
							match = false
							break
						}
					}
					if match {
						windowMatches = true
						break
					}
				}
			}
			stateChanged := m.State().ID != prevID
			prevID = m.State().ID
			if (len(pf) > 0) != (windowMatches && stateChanged) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitDeduplicatesTail(t *testing.T) {
	// abacadae: tail after head aba is c,a,d,a,e with 'a' repeated.
	s := Split(refsOf("abacadae"), 1, 3)
	seen := map[uint64]bool{}
	for _, a := range s.Tail {
		if seen[a] {
			t.Errorf("tail address %d duplicated", a)
		}
		seen[a] = true
	}
}

func TestBuildPanicsOnBadHeadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for headLen < 1")
		}
	}()
	Build(nil, 0)
}

func BenchmarkBuild50Streams(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	var streams []Stream
	for i := 0; i < 50; i++ {
		rs := make([]ref.Ref, 15+r.Intn(10))
		for j := range rs {
			rs[j] = ref.Ref{PC: r.Intn(40), Addr: uint64(r.Intn(4096)) * 8}
		}
		streams = append(streams, Split(rs, uint64(r.Intn(1000)), 2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(streams, 2)
	}
}

func BenchmarkMatcherStep(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	var streams []Stream
	for i := 0; i < 20; i++ {
		rs := make([]ref.Ref, 18)
		for j := range rs {
			rs[j] = ref.Ref{PC: r.Intn(10), Addr: uint64(r.Intn(256)) * 8}
		}
		streams = append(streams, Split(rs, uint64(i), 2))
	}
	d := Build(streams, 2)
	m := NewMatcher(d)
	trace := make([]ref.Ref, 4096)
	for i := range trace {
		trace[i] = ref.Ref{PC: r.Intn(10), Addr: uint64(r.Intn(256)) * 8}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(trace[i%len(trace)])
	}
}

func TestWriteDOT(t *testing.T) {
	v := Split(refsOf("abacadae"), 100, 3)
	w := Split(refsOf("bbghij"), 90, 3)
	d := Build([]Stream{v, w}, 3)
	var buf strings.Builder
	if err := d.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph dfsm", "doublecircle", "s0 ->", "[v0,3]", "pc97:"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 strings.Builder
	if err := d.WriteDOT(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("DOT output must be deterministic")
	}
}
