// Package memsim simulates the two-level data-cache hierarchy of the paper's
// experimental platform (§4.1): a 16KB 4-way L1 data cache and a 256KB 8-way
// L2, both with 32-byte blocks, plus main memory.
//
// Substitution note (see DESIGN.md §2): the paper measures on real Pentium
// III hardware and issues prefetcht0 instructions. Go exposes neither cache
// hardware nor prefetch intrinsics, so this package models the relevant
// behaviour directly: set-associative LRU caches with per-access cycle
// costs, and a prefetch operation that fills both cache levels without
// blocking, becoming usable only after the fill latency has elapsed
// (MSHR-style in-flight tracking). Prefetch profitability — the quantity the
// paper's evaluation measures — is a function of exactly these mechanisms.
package memsim

// Config describes the cache hierarchy geometry and latencies. All sizes are
// in bytes and must be powers of two; latencies are in cycles and are charged
// in addition to the instruction's base cost.
type Config struct {
	BlockSize int // cache block size in bytes
	L1Size    int // total L1 capacity in bytes
	L1Assoc   int // L1 associativity (ways)
	L2Size    int // total L2 capacity in bytes
	L2Assoc   int // L2 associativity (ways)

	L2HitLatency uint64 // extra cycles for an L1 miss that hits in L2
	MemLatency   uint64 // extra cycles for an access that misses both levels

	// MaxInflight bounds the number of outstanding prefetch fills
	// (MSHR-style). Prefetches issued beyond the limit are dropped, as a
	// real memory system would. Zero means unlimited. Demand misses are
	// never blocked.
	MaxInflight int
}

// DefaultConfig mirrors the paper's platform: 16KB 4-way L1D and 256KB 8-way
// L2 with 32-byte blocks (§4.1). The latencies approximate a 550MHz Pentium
// III: ~10 cycles to L2 and ~100 cycles to memory.
func DefaultConfig() Config {
	return Config{
		BlockSize:    32,
		L1Size:       16 << 10,
		L1Assoc:      4,
		L2Size:       256 << 10,
		L2Assoc:      8,
		L2HitLatency: 10,
		MemLatency:   100,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return &ConfigError{Field: name, Value: v}
		}
		return nil
	}
	if err := check("BlockSize", c.BlockSize); err != nil {
		return err
	}
	if err := check("L1Size", c.L1Size); err != nil {
		return err
	}
	if err := check("L2Size", c.L2Size); err != nil {
		return err
	}
	if c.L1Assoc <= 0 || c.L2Assoc <= 0 {
		return &ConfigError{Field: "Assoc", Value: c.L1Assoc * c.L2Assoc}
	}
	if c.L1Size/(c.BlockSize*c.L1Assoc) == 0 {
		return &ConfigError{Field: "L1Size/Assoc", Value: c.L1Size}
	}
	if c.L2Size/(c.BlockSize*c.L2Assoc) == 0 {
		return &ConfigError{Field: "L2Size/Assoc", Value: c.L2Size}
	}
	return nil
}

// ConfigError reports an invalid cache configuration field.
type ConfigError struct {
	Field string
	Value int
}

func (e *ConfigError) Error() string {
	return "memsim: invalid config field " + e.Field
}

// Stats accumulates access and prefetch counters for one simulation run.
type Stats struct {
	Loads  uint64
	Stores uint64

	L1Hits   uint64
	L1Misses uint64
	L2Hits   uint64 // L1 misses that hit in L2
	L2Misses uint64 // accesses that went to memory

	StallCycles uint64 // total extra cycles charged for misses and late prefetches

	Prefetches        uint64 // prefetch operations issued
	PrefetchDrops     uint64 // prefetches dropped at the outstanding-fill limit
	PrefetchDupes     uint64 // prefetches that hit in L1 (no work done)
	UsefulPrefetches  uint64 // prefetched blocks later touched by a demand access
	LatePrefetches    uint64 // demand accesses that arrived before the fill completed
	LateStallCycles   uint64 // cycles stalled waiting for in-flight prefetch fills
	PrefetchEvictions uint64 // prefetched-but-never-touched blocks evicted from L1
}

// MissRatio returns the fraction of demand accesses that missed in L1.
func (s Stats) MissRatio() float64 {
	total := s.L1Hits + s.L1Misses
	if total == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(total)
}

// Accesses returns the total number of demand accesses.
func (s Stats) Accesses() uint64 { return s.Loads + s.Stores }

// Observer is notified of every demand access after it has been applied to
// the hierarchy. Hardware prefetcher baselines (stride, Markov correlation)
// attach themselves as observers and issue Prefetch calls in response.
type Observer interface {
	// OnAccess is called once per demand access. l1Hit and l2Hit describe
	// where the access was satisfied (l2Hit is false for L1 hits).
	OnAccess(now uint64, pc int, addr uint64, l1Hit, l2Hit bool)
}

type line struct {
	tag        uint64
	valid      bool
	prefetched bool // installed by a prefetch
	touched    bool // demand-accessed since install
}

// cache is one set-associative level. Each set keeps its lines in MRU-first
// order; lookups move the hit line to the front, evictions take the back.
type cache struct {
	sets     [][]line
	setMask  uint64
	assoc    int
	evictObs func(l line)
}

func newCache(size, blockSize, assoc int, evictObs func(line)) *cache {
	nSets := size / (blockSize * assoc)
	c := &cache{
		sets:     make([][]line, nSets),
		setMask:  uint64(nSets - 1),
		assoc:    assoc,
		evictObs: evictObs,
	}
	backing := make([]line, nSets*assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return c
}

// lookup probes for block and promotes it to MRU on a hit. It returns a
// pointer to the (promoted) line, or nil on a miss.
func (c *cache) lookup(block uint64) *line {
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			// Move to front (MRU).
			hit := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = hit
			return &set[0]
		}
	}
	return nil
}

// contains probes for block without disturbing recency order.
func (c *cache) contains(block uint64) bool {
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// install inserts block as MRU, evicting the LRU line if the set is full.
// It returns a pointer to the installed line.
func (c *cache) install(block uint64, prefetched bool) *line {
	set := c.sets[block&c.setMask]
	victim := set[len(set)-1]
	if victim.valid && c.evictObs != nil {
		c.evictObs(victim)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line{tag: block, valid: true, prefetched: prefetched}
	return &set[0]
}

// invalidateAll clears every line (used by Reset).
func (c *cache) invalidateAll() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
}

// Hierarchy is a two-level cache hierarchy with in-flight prefetch tracking.
// It is not safe for concurrent use; the machine interpreter is
// single-threaded, matching the paper's uniprocessor platform.
type Hierarchy struct {
	cfg        Config
	blockShift uint
	l1, l2     *cache
	inflight   map[uint64]uint64 // block -> cycle at which the fill completes
	stats      Stats
	observer   Observer
}

// New constructs a hierarchy for the given configuration.
// It panics if the configuration is invalid; use Config.Validate to check.
func New(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:      cfg,
		inflight: make(map[uint64]uint64),
	}
	for cfg.BlockSize>>h.blockShift > 1 {
		h.blockShift++
	}
	h.l1 = newCache(cfg.L1Size, cfg.BlockSize, cfg.L1Assoc, h.onL1Evict)
	h.l2 = newCache(cfg.L2Size, cfg.BlockSize, cfg.L2Assoc, nil)
	return h
}

func (h *Hierarchy) onL1Evict(l line) {
	if l.prefetched && !l.touched {
		h.stats.PrefetchEvictions++
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a snapshot of the accumulated counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// SetObserver attaches an access observer (nil detaches).
func (h *Hierarchy) SetObserver(o Observer) { h.observer = o }

// Block returns the block number containing addr.
func (h *Hierarchy) Block(addr uint64) uint64 { return addr >> h.blockShift }

// BlockSize returns the configured block size in bytes.
func (h *Hierarchy) BlockSize() int { return h.cfg.BlockSize }

// Access performs a demand load or store of addr at the current cycle and
// returns the number of stall cycles the access costs beyond the
// instruction's base cost.
func (h *Hierarchy) Access(now uint64, pc int, addr uint64, isWrite bool) uint64 {
	if isWrite {
		h.stats.Stores++
	} else {
		h.stats.Loads++
	}
	block := addr >> h.blockShift

	var stall uint64
	var l1Hit, l2Hit bool
	if l := h.l1.lookup(block); l != nil {
		h.stats.L1Hits++
		l1Hit = true
		if l.prefetched && !l.touched {
			h.stats.UsefulPrefetches++
			l.touched = true
		}
		// The block may still be in flight from a prefetch: stall for the
		// remaining fill latency (a "late" but still partially useful
		// prefetch).
		if ready, ok := h.inflight[block]; ok {
			if ready > now {
				wait := ready - now
				stall = wait
				h.stats.LatePrefetches++
				h.stats.LateStallCycles += wait
			}
			delete(h.inflight, block)
		}
	} else {
		h.stats.L1Misses++
		delete(h.inflight, block) // block was evicted before use, if present
		if h.l2.lookup(block) != nil {
			h.stats.L2Hits++
			l2Hit = true
			stall = h.cfg.L2HitLatency
			h.l1.install(block, false)
		} else {
			h.stats.L2Misses++
			stall = h.cfg.MemLatency
			h.l2.install(block, false)
			h.l1.install(block, false)
		}
	}
	h.stats.StallCycles += stall
	if h.observer != nil {
		h.observer.OnAccess(now, pc, addr, l1Hit, l2Hit)
	}
	return stall
}

// Prefetch issues a non-blocking prefetch of addr at the current cycle,
// modeling the Pentium III prefetcht0 instruction used by the paper (§4.1):
// the block is brought into both cache levels. The fill completes after the
// appropriate latency; a demand access that arrives earlier stalls only for
// the remaining time.
func (h *Hierarchy) Prefetch(now uint64, addr uint64) {
	h.stats.Prefetches++
	block := addr >> h.blockShift
	if h.l1.contains(block) {
		h.stats.PrefetchDupes++
		return
	}
	if max := h.cfg.MaxInflight; max > 0 && len(h.inflight) >= max {
		// Reclaim completed fills before deciding to drop.
		for b, ready := range h.inflight {
			if ready <= now {
				delete(h.inflight, b)
			}
		}
		if len(h.inflight) >= max {
			h.stats.PrefetchDrops++
			return
		}
	}
	var latency uint64
	if h.l2.lookup(block) != nil {
		latency = h.cfg.L2HitLatency
	} else {
		latency = h.cfg.MemLatency
		h.l2.install(block, true)
	}
	h.l1.install(block, true)
	if ready, ok := h.inflight[block]; !ok || now+latency > ready {
		h.inflight[block] = now + latency
	}
}

// Contains reports whether addr's block currently resides in the given level
// (1 or 2) without disturbing replacement state. It is intended for tests.
func (h *Hierarchy) Contains(level int, addr uint64) bool {
	block := addr >> h.blockShift
	switch level {
	case 1:
		return h.l1.contains(block)
	case 2:
		return h.l2.contains(block)
	default:
		panic("memsim: Contains level must be 1 or 2")
	}
}

// Reset clears all cache contents, in-flight fills, and statistics.
func (h *Hierarchy) Reset() {
	h.l1.invalidateAll()
	h.l2.invalidateAll()
	clear(h.inflight)
	h.stats = Stats{}
}
