package memsim

import (
	"testing"
	"testing/quick"
)

// smallConfig is a tiny hierarchy that makes eviction behaviour easy to
// exercise: L1 = 4 sets x 2 ways, L2 = 8 sets x 2 ways, 32-byte blocks.
func smallConfig() Config {
	return Config{
		BlockSize:    32,
		L1Size:       256,
		L1Assoc:      2,
		L2Size:       512,
		L2Assoc:      2,
		L2HitLatency: 10,
		MemLatency:   100,
	}
}

func TestDefaultConfigMatchesPaperGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.L1Size != 16<<10 || cfg.L1Assoc != 4 {
		t.Errorf("L1 geometry = %d bytes %d-way, want 16KB 4-way", cfg.L1Size, cfg.L1Assoc)
	}
	if cfg.L2Size != 256<<10 || cfg.L2Assoc != 8 {
		t.Errorf("L2 geometry = %d bytes %d-way, want 256KB 8-way", cfg.L2Size, cfg.L2Assoc)
	}
	if cfg.BlockSize != 32 {
		t.Errorf("BlockSize = %d, want 32", cfg.BlockSize)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{BlockSize: 0, L1Size: 64, L1Assoc: 1, L2Size: 128, L2Assoc: 1},
		{BlockSize: 48, L1Size: 64, L1Assoc: 1, L2Size: 128, L2Assoc: 1},  // not power of two
		{BlockSize: 32, L1Size: 100, L1Assoc: 1, L2Size: 128, L2Assoc: 1}, // not power of two
		{BlockSize: 32, L1Size: 64, L1Assoc: 0, L2Size: 128, L2Assoc: 1},
		{BlockSize: 32, L1Size: 32, L1Assoc: 4, L2Size: 128, L2Assoc: 1}, // zero sets
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(smallConfig())
	if stall := h.Access(0, 1, 0x1000, false); stall != 100 {
		t.Errorf("cold miss stall = %d, want 100 (memory latency)", stall)
	}
	if stall := h.Access(1, 1, 0x1000, false); stall != 0 {
		t.Errorf("hit stall = %d, want 0", stall)
	}
	// Same block, different word.
	if stall := h.Access(2, 1, 0x1010, false); stall != 0 {
		t.Errorf("same-block hit stall = %d, want 0", stall)
	}
	st := h.Stats()
	if st.L1Misses != 1 || st.L1Hits != 2 || st.L2Misses != 1 {
		t.Errorf("stats = %+v, want 1 L1 miss, 2 L1 hits, 1 L2 miss", st)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	cfg := smallConfig()
	h := New(cfg)
	// L1 has 4 sets x 2 ways. Blocks mapping to the same L1 set are
	// BlockSize*NumSets = 128 bytes apart. Fill one set with 3 distinct
	// blocks to evict the first.
	base := uint64(0x0)
	h.Access(0, 1, base, false)
	h.Access(1, 1, base+128, false)
	h.Access(2, 1, base+256, false) // evicts base from L1
	if h.Contains(1, base) {
		t.Fatal("block should have been evicted from L1")
	}
	if !h.Contains(2, base) {
		t.Fatal("block should still be in L2")
	}
	if stall := h.Access(3, 1, base, false); stall != cfg.L2HitLatency {
		t.Errorf("L2 hit stall = %d, want %d", stall, cfg.L2HitLatency)
	}
	if st := h.Stats(); st.L2Hits != 1 {
		t.Errorf("L2Hits = %d, want 1", st.L2Hits)
	}
}

func TestLRUOrderWithinSet(t *testing.T) {
	h := New(smallConfig())
	// Three blocks in the same L1 set (2 ways): a, b, then touch a, then c.
	// b is LRU and must be evicted; a must survive.
	a, b, c := uint64(0), uint64(128), uint64(256)
	h.Access(0, 1, a, false)
	h.Access(1, 1, b, false)
	h.Access(2, 1, a, false) // promote a to MRU
	h.Access(3, 1, c, false) // evicts b
	if !h.Contains(1, a) {
		t.Error("a should have been retained (MRU)")
	}
	if h.Contains(1, b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !h.Contains(1, c) {
		t.Error("c should be resident")
	}
}

func TestPrefetchFillsBothLevels(t *testing.T) {
	h := New(smallConfig())
	h.Prefetch(0, 0x2000)
	if !h.Contains(1, 0x2000) || !h.Contains(2, 0x2000) {
		t.Fatal("prefetch must fill both levels (prefetcht0 semantics)")
	}
	st := h.Stats()
	if st.Prefetches != 1 {
		t.Errorf("Prefetches = %d, want 1", st.Prefetches)
	}
}

func TestPrefetchTimeliness(t *testing.T) {
	cfg := smallConfig()
	h := New(cfg)

	// Timely: access happens after the fill latency has fully elapsed.
	h.Prefetch(0, 0x2000)
	if stall := h.Access(200, 1, 0x2000, false); stall != 0 {
		t.Errorf("timely prefetched access stall = %d, want 0", stall)
	}

	// Late: access arrives 40 cycles after issue; fill takes 100.
	h.Prefetch(1000, 0x4000)
	if stall := h.Access(1040, 1, 0x4000, false); stall != 60 {
		t.Errorf("late prefetched access stall = %d, want 60 (remaining latency)", stall)
	}

	st := h.Stats()
	if st.UsefulPrefetches != 2 {
		t.Errorf("UsefulPrefetches = %d, want 2", st.UsefulPrefetches)
	}
	if st.LatePrefetches != 1 || st.LateStallCycles != 60 {
		t.Errorf("late stats = %d/%d, want 1/60", st.LatePrefetches, st.LateStallCycles)
	}
}

func TestPrefetchFromL2IsFast(t *testing.T) {
	cfg := smallConfig()
	h := New(cfg)
	// Load the block, then evict it from L1 but not L2.
	h.Access(0, 1, 0, false)
	h.Access(1, 1, 128, false)
	h.Access(2, 1, 256, false)
	if h.Contains(1, 0) || !h.Contains(2, 0) {
		t.Fatal("setup failed: block should be in L2 only")
	}
	h.Prefetch(10, 0)
	// Fill from L2 takes only L2HitLatency; by cycle 10+10 it is ready.
	if stall := h.Access(25, 1, 0, false); stall != 0 {
		t.Errorf("stall = %d, want 0 (L2-sourced prefetch ready)", stall)
	}
}

func TestPrefetchDuplicateIsCheap(t *testing.T) {
	h := New(smallConfig())
	h.Access(0, 1, 0x2000, false)
	h.Prefetch(1, 0x2000)
	st := h.Stats()
	if st.PrefetchDupes != 1 {
		t.Errorf("PrefetchDupes = %d, want 1", st.PrefetchDupes)
	}
}

func TestUselessPrefetchEvictionCounted(t *testing.T) {
	h := New(smallConfig())
	// Prefetch a block, never touch it, then push two demand blocks through
	// the same L1 set to evict it.
	h.Prefetch(0, 0)
	h.Access(1, 1, 128, false)
	h.Access(2, 1, 256, false)
	if st := h.Stats(); st.PrefetchEvictions != 1 {
		t.Errorf("PrefetchEvictions = %d, want 1", st.PrefetchEvictions)
	}
}

func TestStoresCountedSeparately(t *testing.T) {
	h := New(smallConfig())
	h.Access(0, 1, 0, true)
	h.Access(1, 1, 0, false)
	st := h.Stats()
	if st.Stores != 1 || st.Loads != 1 {
		t.Errorf("loads/stores = %d/%d, want 1/1", st.Loads, st.Stores)
	}
	if st.Accesses() != 2 {
		t.Errorf("Accesses() = %d, want 2", st.Accesses())
	}
}

func TestMissRatio(t *testing.T) {
	h := New(smallConfig())
	h.Access(0, 1, 0, false) // miss
	h.Access(1, 1, 0, false) // hit
	h.Access(2, 1, 0, false) // hit
	h.Access(3, 1, 0, false) // hit
	st := h.Stats()
	if got := st.MissRatio(); got != 0.25 {
		t.Errorf("MissRatio = %v, want 0.25", got)
	}
	var empty Stats
	if empty.MissRatio() != 0 {
		t.Error("MissRatio of empty stats should be 0")
	}
}

func TestReset(t *testing.T) {
	h := New(smallConfig())
	h.Access(0, 1, 0, false)
	h.Prefetch(1, 128)
	h.Reset()
	if h.Contains(1, 0) || h.Contains(2, 0) {
		t.Error("Reset must invalidate cache contents")
	}
	if st := h.Stats(); st != (Stats{}) {
		t.Errorf("Reset must clear stats, got %+v", st)
	}
	// A post-reset access is a cold miss again.
	if stall := h.Access(10, 1, 0, false); stall != 100 {
		t.Errorf("post-reset stall = %d, want 100", stall)
	}
}

type recordingObserver struct {
	n      int
	lastPC int
	l1Hit  bool
}

func (r *recordingObserver) OnAccess(now uint64, pc int, addr uint64, l1Hit, l2Hit bool) {
	r.n++
	r.lastPC = pc
	r.l1Hit = l1Hit
}

func TestObserverNotified(t *testing.T) {
	h := New(smallConfig())
	obs := &recordingObserver{}
	h.SetObserver(obs)
	h.Access(0, 42, 0x100, false)
	if obs.n != 1 || obs.lastPC != 42 || obs.l1Hit {
		t.Errorf("observer saw n=%d pc=%d l1Hit=%v, want 1/42/false", obs.n, obs.lastPC, obs.l1Hit)
	}
	h.Access(1, 43, 0x100, false)
	if obs.n != 2 || !obs.l1Hit {
		t.Errorf("observer saw n=%d l1Hit=%v, want 2/true", obs.n, obs.l1Hit)
	}
	h.SetObserver(nil)
	h.Access(2, 44, 0x100, false)
	if obs.n != 2 {
		t.Error("detached observer must not be notified")
	}
}

// Property: the cache never stalls a second consecutive access to the same
// address, and total stall cycles equal the sum of per-access stalls.
func TestPropertyRepeatAccessHits(t *testing.T) {
	f := func(addrs []uint16) bool {
		h := New(smallConfig())
		var now uint64
		var sum uint64
		for _, a16 := range addrs {
			addr := uint64(a16)
			s1 := h.Access(now, 1, addr, false)
			now += 1 + s1
			s2 := h.Access(now, 1, addr, false)
			now += 1 + s2
			sum += s1 + s2
			if s2 != 0 {
				return false
			}
		}
		return h.Stats().StallCycles == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: working sets that fit in L1 never miss after the first touch,
// regardless of access order.
func TestPropertySmallWorkingSetStaysResident(t *testing.T) {
	cfg := smallConfig() // L1 = 8 blocks
	f := func(order []uint8) bool {
		h := New(cfg)
		// Working set: 4 blocks, all mapping to distinct sets.
		blocks := []uint64{0, 32, 64, 96}
		for _, b := range blocks {
			h.Access(0, 1, b, false)
		}
		for i, o := range order {
			if s := h.Access(uint64(i), 1, blocks[int(o)%len(blocks)], false); s != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: hit+miss counters always sum to the number of demand accesses.
func TestPropertyCountersConsistent(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		h := New(smallConfig())
		n := len(addrs)
		if len(writes) < n {
			n = len(writes)
		}
		for i := 0; i < n; i++ {
			h.Access(uint64(i), i, uint64(addrs[i]), writes[i])
		}
		st := h.Stats()
		if st.L1Hits+st.L1Misses != uint64(n) {
			return false
		}
		if st.L2Hits+st.L2Misses != st.L1Misses {
			return false
		}
		return st.Accesses() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	h := New(DefaultConfig())
	h.Access(0, 1, 0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i), 1, 0, false)
	}
}

func BenchmarkAccessMissStream(b *testing.B) {
	h := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride through far more memory than L2 so most accesses miss.
		h.Access(uint64(i), 1, uint64(i)*64%(64<<20), false)
	}
}

func BenchmarkPrefetch(b *testing.B) {
	h := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Prefetch(uint64(i), uint64(i)*32%(64<<20))
	}
}

func TestMaxInflightDropsExcessPrefetches(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxInflight = 2
	h := New(cfg)
	// Three simultaneous prefetch fills: the third must be dropped.
	h.Prefetch(0, 0x10000)
	h.Prefetch(0, 0x20000)
	h.Prefetch(0, 0x30000)
	st := h.Stats()
	if st.PrefetchDrops != 1 {
		t.Fatalf("PrefetchDrops = %d, want 1", st.PrefetchDrops)
	}
	if h.Contains(1, 0x30000) {
		t.Error("dropped prefetch must not install a line")
	}
	// After the fills complete, capacity frees up again.
	h.Prefetch(500, 0x40000)
	if st := h.Stats(); st.PrefetchDrops != 1 {
		t.Errorf("PrefetchDrops = %d after reclaim, want still 1", st.PrefetchDrops)
	}
	if !h.Contains(1, 0x40000) {
		t.Error("post-reclaim prefetch should succeed")
	}
}

func TestMaxInflightZeroIsUnlimited(t *testing.T) {
	h := New(smallConfig())
	for i := 0; i < 100; i++ {
		h.Prefetch(0, uint64(0x10000+i*4096))
	}
	if st := h.Stats(); st.PrefetchDrops != 0 {
		t.Errorf("unlimited config dropped %d prefetches", st.PrefetchDrops)
	}
}
