// Package predictortest is the differential conformance suite every
// registered Predictor implementation must pass. The suite pins the
// interface contracts the rest of the runtime leans on — bit-exact
// determinism across instances, pass-through behavior when untrained,
// replayability after Reset, and an accuracy ledger whose books balance —
// so a new predictor that passes Conformance can be dropped behind
// ConcurrentMatcher and the Supervisor's A/B machinery without further
// ceremony.
//
// It lives under internal/ because it imports the root package (legal: an
// internal package may import its parent); the root package's external test
// files import it back.
package predictortest

import (
	"reflect"
	"testing"

	"hotprefetch"
)

// Trace builds a deterministic synthetic reference trace dominated by
// repeating hot streams with interspersed noise — enough regularity for
// every predictor family (prefix matcher, Markov table, stride table) to
// train on something, enough noise to exercise the miss paths.
func Trace(phase, reps int) []hotprefetch.Ref {
	stream := make([]hotprefetch.Ref, 10)
	for i := range stream {
		stream[i] = hotprefetch.Ref{
			PC:   1000*phase + i,
			Addr: uint64(0x10000*phase + 64*i),
		}
	}
	// A second, strided stream keeps the stride table's confidence counters
	// busy within one page.
	ascend := make([]hotprefetch.Ref, 8)
	for i := range ascend {
		ascend[i] = hotprefetch.Ref{PC: 5000 + phase, Addr: uint64(0x400000 + 32*i)}
	}
	var trace []hotprefetch.Ref
	for r := 0; r < reps; r++ {
		trace = append(trace, stream...)
		trace = append(trace, ascend...)
		trace = append(trace, hotprefetch.Ref{
			PC:   90000 + phase,
			Addr: uint64(0xdead0000 + 128*r),
		})
	}
	return trace
}

// Streams profiles the trace and returns its hot streams, failing the test
// if nothing hot is found (a conformance run over zero streams would
// vacuously pass).
func Streams(t *testing.T, trace []hotprefetch.Ref) []hotprefetch.Stream {
	t.Helper()
	p := hotprefetch.NewProfile()
	p.AddAll(trace)
	streams := p.HotStreams(hotprefetch.AnalysisConfig{
		MinLen: 2, MaxLen: 100, MinCoverage: 0.05,
	})
	if len(streams) == 0 {
		t.Fatal("predictortest: no hot streams in the synthetic trace")
	}
	return streams
}

// step is one recorded Observe outcome.
type step struct {
	prefetch []uint64
	cmp      int
}

// record replays the trace through p and captures every outcome. The
// returned slices are deep copies: Predictor allows the prefetch slice to
// alias internal state only until the next Observe.
func record(p hotprefetch.Predictor, trace []hotprefetch.Ref) []step {
	out := make([]step, len(trace))
	for i, r := range trace {
		pf, cmp := p.Observe(r)
		out[i] = step{prefetch: append([]uint64(nil), pf...), cmp: cmp}
	}
	return out
}

// diffSteps fails the test at the first index where the two replays
// disagree.
func diffSteps(t *testing.T, label string, a, b []step) {
	t.Helper()
	for i := range a {
		if a[i].cmp != b[i].cmp || !reflect.DeepEqual(a[i].prefetch, b[i].prefetch) {
			t.Fatalf("%s: diverged at ref %d: (%v, %d) != (%v, %d)",
				label, i, a[i].prefetch, a[i].cmp, b[i].prefetch, b[i].cmp)
		}
	}
}

// Conformance runs the full contract suite against the named registered
// predictor: build it via the registry exactly as ConcurrentMatcher would.
func Conformance(t *testing.T, name string, streams []hotprefetch.Stream, trace []hotprefetch.Ref) {
	t.Helper()

	t.Run("determinism", func(t *testing.T) {
		// Two instances trained on the same streams must produce bit-exact
		// prefetch sequences and comparison counts over the same trace —
		// the property the differential harness and warm-start validation
		// both assume.
		a, err := hotprefetch.NewPredictor(name, streams, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := hotprefetch.NewPredictor(name, streams, 2)
		if err != nil {
			t.Fatal(err)
		}
		diffSteps(t, "instance A vs B", record(a, trace), record(b, trace))
	})

	t.Run("untrained-pass-through", func(t *testing.T) {
		// Built over no streams, every implementation is the deoptimized
		// state: no prefetch ever, at least one comparison per observation.
		p, err := hotprefetch.NewPredictor(name, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range trace {
			pf, cmp := p.Observe(r)
			if len(pf) != 0 {
				t.Fatalf("untrained predictor prefetched %v at ref %d", pf, i)
			}
			if cmp < 1 {
				t.Fatalf("comparisons = %d at ref %d, want >= 1", cmp, i)
			}
		}
	})

	t.Run("reset-replay", func(t *testing.T) {
		// Reset returns the rolling match state to the start: a replay
		// after Reset is bit-identical to the first replay.
		p, err := hotprefetch.NewPredictor(name, streams, 2)
		if err != nil {
			t.Fatal(err)
		}
		first := record(p, trace)
		p.Reset()
		diffSteps(t, "first vs post-Reset replay", first, record(p, trace))
	})

	t.Run("accuracy-books", func(t *testing.T) {
		// The FIFO-window ledger must balance exactly:
		// issued == hits + outstanding + dropped. A small window forces
		// evictions; the full trace exercises hits and coalescing.
		p, err := hotprefetch.NewPredictor(name, streams, 2)
		if err != nil {
			t.Fatal(err)
		}
		p.EnableAccuracyTracking(8)
		var issuedSum uint64
		for _, r := range trace {
			pf, _ := p.Observe(r)
			issuedSum += uint64(len(pf))
		}
		books, ok := p.(hotprefetch.AccuracyBooks)
		if !ok {
			t.Fatalf("predictor %q does not implement AccuracyBooks", name)
		}
		issued, hits, outstanding, dropped := books.AccuracyBooks()
		if issued != hits+outstanding+dropped {
			t.Fatalf("books do not balance: issued=%d != hits=%d + outstanding=%d + dropped=%d",
				issued, hits, outstanding, dropped)
		}
		if issued != issuedSum {
			t.Fatalf("ledger issued=%d, observed %d prefetch addresses", issued, issuedSum)
		}
		cIssued, cHits := p.AccuracyCounters()
		if cIssued != issued || cHits != hits {
			t.Fatalf("AccuracyCounters (%d, %d) disagree with books (%d, %d)",
				cIssued, cHits, issued, hits)
		}
	})

	t.Run("tracking-off-counters-zero", func(t *testing.T) {
		// Without EnableAccuracyTracking the counters stay zero — the
		// ledger is opt-in so the zero-alloc observe path stays untouched.
		p, err := hotprefetch.NewPredictor(name, streams, 2)
		if err != nil {
			t.Fatal(err)
		}
		record(p, trace)
		if issued, hits := p.AccuracyCounters(); issued != 0 || hits != 0 {
			t.Fatalf("counters without tracking = (%d, %d), want (0, 0)", issued, hits)
		}
	})
}
