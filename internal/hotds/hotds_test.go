package hotds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hotprefetch/internal/sequitur"
)

func grammarOf(s string) *sequitur.Snapshot {
	g := sequitur.New()
	for _, c := range s {
		g.Append(uint64(c - 'a'))
	}
	return g.Snapshot()
}

func wordString(w []uint64) string {
	b := make([]byte, len(w))
	for i, v := range w {
		b[i] = byte('a' + v)
	}
	return string(b)
}

// paperConfig is the worked example's configuration: H = 8, minLen = 2,
// maxLen = 7, no uniqueness filter (§2.3).
func paperConfig() Config {
	return Config{MinLen: 2, MaxLen: 7, Heat: 8}
}

// TestPaperTable1 reproduces the values of paper Table 1 / Figure 6 for
// w = abaabcabcabcabc: indices, uses, coldUses, heat, and hotness per rule.
func TestPaperTable1(t *testing.T) {
	snap := grammarOf("abaabcabcabcabc")
	streams, stats := AnalyzeDetailed(snap, paperConfig())

	// Collect stats by expansion so the test is independent of rule
	// discovery order.
	byWord := map[string]RuleStats{}
	for _, st := range stats {
		byWord[wordString(snap.Expand(st.Rule))] = st
	}

	type row struct {
		word                      string
		length, index, uses, cold uint64
		heat                      uint64
		hot                       bool
	}
	rows := []row{
		{"abaabcabcabcabc", 15, 0, 1, 1, 15, false}, // S: "no, start"
		{"ab", 2, 3, 5, 1, 2, false},                // A: "no, cold"
		{"abcabc", 6, 1, 2, 2, 12, true},            // B: "yes"
		{"abc", 3, 2, 4, 0, 0, false},               // C: "no, cold"
	}
	for _, want := range rows {
		got, ok := byWord[want.word]
		if !ok {
			t.Errorf("no rule expanding to %q", want.word)
			continue
		}
		if uint64(got.Index) != want.index || got.Len != want.length ||
			got.Uses != want.uses || got.ColdUses != want.cold ||
			got.Heat != want.heat || got.Hot != want.hot {
			t.Errorf("%q: got index=%d len=%d uses=%d cold=%d heat=%d hot=%v, "+
				"want index=%d len=%d uses=%d cold=%d heat=%d hot=%v",
				want.word, got.Index, got.Len, got.Uses, got.ColdUses, got.Heat, got.Hot,
				want.index, want.length, want.uses, want.cold, want.heat, want.hot)
		}
	}

	// The paper finds exactly one hot data stream, w_B = abcabc with heat 12
	// accounting for 12/15 = 80% of all data references.
	if len(streams) != 1 {
		t.Fatalf("found %d hot streams, want 1", len(streams))
	}
	if wordString(streams[0].Word) != "abcabc" || streams[0].Heat != 12 {
		t.Errorf("stream = %q heat %d, want abcabc heat 12",
			wordString(streams[0].Word), streams[0].Heat)
	}
	if cov := streams[0].Coverage(15); cov != 0.8 {
		t.Errorf("coverage = %v, want 0.8", cov)
	}
}

func TestEmptyGrammar(t *testing.T) {
	g := sequitur.New()
	if s := Analyze(g.Snapshot(), DefaultConfig()); len(s) != 0 {
		t.Errorf("empty grammar produced %d streams", len(s))
	}
}

func TestHeatThresholdFromCoverage(t *testing.T) {
	cfg := Config{MinCoverage: 0.01}
	if h := cfg.threshold(100000); h != 1000 {
		t.Errorf("threshold = %d, want 1000", h)
	}
	cfg = Config{Heat: 42, MinCoverage: 0.5}
	if h := cfg.threshold(100000); h != 42 {
		t.Errorf("explicit Heat must win, got %d", h)
	}
	cfg = Config{MinCoverage: 0.01}
	if h := cfg.threshold(10); h != 1 {
		t.Errorf("threshold floor = %d, want 1", h)
	}
}

func TestMinUniqueFilter(t *testing.T) {
	// "ababab..." has streams with only 2 unique symbols.
	snap := grammarOf("abababababababababababababababab")
	cfg := Config{MinLen: 2, MaxLen: 16, Heat: 8}
	withFilter := cfg
	withFilter.MinUnique = 3
	if s := Analyze(snap, cfg); len(s) == 0 {
		t.Fatal("expected hot streams without uniqueness filter")
	}
	if s := Analyze(snap, withFilter); len(s) != 0 {
		t.Errorf("uniqueness filter should reject 2-symbol streams, got %d", len(s))
	}
}

func TestMaxStreamsKeepsHottest(t *testing.T) {
	// Two distinct repeating patterns of different frequencies.
	var in string
	for i := 0; i < 8; i++ {
		in += "abcd"
	}
	for i := 0; i < 4; i++ {
		in += "efgh"
	}
	snap := grammarOf(in)
	cfg := Config{MinLen: 2, MaxLen: 8, Heat: 8, MaxStreams: 1}
	streams := Analyze(snap, cfg)
	if len(streams) != 1 {
		t.Fatalf("got %d streams, want 1", len(streams))
	}
	all := Analyze(snap, Config{MinLen: 2, MaxLen: 8, Heat: 8})
	if len(all) < 2 {
		t.Skipf("grammar yielded %d streams; cannot compare", len(all))
	}
	if streams[0].Heat < all[1].Heat {
		t.Error("MaxStreams must keep the hottest stream")
	}
}

func TestStreamsSortedByHeat(t *testing.T) {
	var in string
	for i := 0; i < 10; i++ {
		in += "abcabcxyzxyz"
	}
	streams := Analyze(grammarOf(in), Config{MinLen: 2, MaxLen: 24, Heat: 4})
	for i := 1; i < len(streams); i++ {
		if streams[i].Heat > streams[i-1].Heat {
			t.Fatalf("streams not sorted by heat: %d before %d",
				streams[i-1].Heat, streams[i].Heat)
		}
	}
}

// Property: analysis is linear-time-safe and conservative — every reported
// stream's heat meets the threshold, its length is within bounds, and its
// word actually occurs in the original trace.
func TestPropertyReportedStreamsAreValid(t *testing.T) {
	f := func(data []byte, rep uint8) bool {
		// Build a trace with guaranteed repetition.
		unit := make([]uint64, 0, 8)
		for _, d := range data {
			unit = append(unit, uint64(d%6))
			if len(unit) == 8 {
				break
			}
		}
		if len(unit) == 0 {
			unit = []uint64{0, 1}
		}
		var trace []uint64
		reps := int(rep%20) + 2
		for i := 0; i < reps; i++ {
			trace = append(trace, unit...)
		}
		g := sequitur.New()
		g.AppendAll(trace)
		snap := g.Snapshot()
		cfg := Config{MinLen: 2, MaxLen: 50, Heat: 4}
		streams := Analyze(snap, cfg)
		for _, s := range streams {
			if s.Heat < 4 {
				return false
			}
			l := uint64(len(s.Word))
			if l < cfg.MinLen || l > cfg.MaxLen {
				return false
			}
			if !containsSub(trace, s.Word) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: hot streams of the fast analysis never overlap-subsume each
// other entirely in heat accounting — total heat cannot exceed the trace
// length (coldUses discipline guarantees non-double-counting).
func TestPropertyTotalHeatBounded(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		trace := make([]uint64, 0, len(data)*4)
		for _, d := range data {
			v := uint64(d % 8)
			trace = append(trace, v, v+1, v, v+2)
		}
		g := sequitur.New()
		g.AppendAll(trace)
		streams := Analyze(g.Snapshot(), Config{MinLen: 2, MaxLen: 1 << 20, Heat: 2})
		return TotalHeat(streams) <= uint64(len(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPreciseFindsKnownStream(t *testing.T) {
	var trace []uint64
	for i := 0; i < 10; i++ {
		trace = append(trace, 1, 2, 3, 4, 5)
		trace = append(trace, uint64(100+i)) // noise separator
	}
	streams := PreciseAnalyze(trace, Config{MinLen: 5, MaxLen: 10, Heat: 25})
	if len(streams) == 0 {
		t.Fatal("precise analysis found nothing")
	}
	found := false
	for _, s := range streams {
		if len(s.Word) == 5 && s.Word[0] == 1 && s.Word[4] == 5 {
			found = true
			if s.Heat != 50 {
				t.Errorf("heat = %d, want 50 (5 long x 10 occurrences)", s.Heat)
			}
		}
	}
	if !found {
		t.Errorf("expected stream 1..5 in %v", streams)
	}
}

func TestPreciseCountsNonOverlapping(t *testing.T) {
	// "aaaa..." of length 12: the stream "aaa" occurs 4 times
	// non-overlapping, not 10 times.
	trace := make([]uint64, 12)
	streams := PreciseAnalyze(trace, Config{MinLen: 3, MaxLen: 3, Heat: 6})
	if len(streams) != 1 {
		t.Fatalf("got %d streams, want 1", len(streams))
	}
	if streams[0].Heat != 12 {
		t.Errorf("heat = %d, want 12 (3 x 4 non-overlapping)", streams[0].Heat)
	}
}

func TestPreciseSubsumption(t *testing.T) {
	var trace []uint64
	for i := 0; i < 20; i++ {
		trace = append(trace, 1, 2, 3, 4)
	}
	streams := PreciseAnalyze(trace, Config{MinLen: 2, MaxLen: 8, Heat: 8})
	// The 8-long "12341234" (or a rotation) should subsume shorter
	// substrings of equal or lower heat; regardless, no reported stream may
	// be a substring of a hotter reported one.
	for i, a := range streams {
		for j, b := range streams {
			if i == j {
				continue
			}
			if len(a.Word) < len(b.Word) && a.Heat <= b.Heat && containsSub(b.Word, a.Word) {
				t.Errorf("stream %v subsumed by %v but still reported", a, b)
			}
		}
	}
}

// Property: the fast analysis is an approximation of the precise one —
// every stream the fast algorithm reports is re-discovered by the precise
// detector, either verbatim or as a substring of a hotter stream (its
// subsumption rule). This is the paper's "faster, less precise" relationship
// (§2.3) stated as an inclusion.
func TestPropertyFastStreamsFoundByPrecise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var trace []uint64
		unit := []uint64{1, 2, 3, 4, 5, 6}
		for i := 0; i < 30; i++ {
			if r.Intn(4) == 0 {
				trace = append(trace, uint64(50+r.Intn(20)))
			} else {
				trace = append(trace, unit...)
			}
		}
		cfg := Config{MinLen: 3, MaxLen: 30, Heat: 12}
		g := sequitur.New()
		g.AppendAll(trace)
		fast := Analyze(g.Snapshot(), cfg)
		precise := PreciseAnalyze(trace, cfg)
		for _, fs := range fast {
			covered := false
			for _, ps := range precise {
				if containsSub(ps.Word, fs.Word) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCoverageOf(t *testing.T) {
	trace := []uint64{1, 2, 3, 1, 2, 3, 9, 9}
	streams := []StreamInfo{{Word: []uint64{1, 2, 3}, Heat: 6}}
	if cov := CoverageOf(trace, streams); cov != 0.75 {
		t.Errorf("coverage = %v, want 0.75", cov)
	}
	if cov := CoverageOf(nil, streams); cov != 0 {
		t.Errorf("empty trace coverage = %v, want 0", cov)
	}
	if cov := CoverageOf(trace, nil); cov != 0 {
		t.Errorf("no-stream coverage = %v, want 0", cov)
	}
}

func buildBenchTrace(n int) []uint64 {
	r := rand.New(rand.NewSource(7))
	streams := [][]uint64{}
	for s := 0; s < 10; s++ {
		st := make([]uint64, 15+r.Intn(10))
		for i := range st {
			st[i] = uint64(s*100 + i)
		}
		streams = append(streams, st)
	}
	var trace []uint64
	for len(trace) < n {
		if r.Intn(10) == 0 {
			trace = append(trace, uint64(10000+r.Intn(1000)))
		} else {
			trace = append(trace, streams[r.Intn(len(streams))]...)
		}
	}
	return trace[:n]
}

// BenchmarkFastAnalysis measures the Figure 5 algorithm (grammar build +
// analysis), the per-cycle cost the paper's Hds bar pays (Figure 11).
func BenchmarkFastAnalysis(b *testing.B) {
	trace := buildBenchTrace(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := sequitur.New()
		g.AppendAll(trace)
		Analyze(g.Snapshot(), DefaultConfig())
	}
}

// BenchmarkPreciseAnalysis measures the Larus-style exact detector on the
// same trace — the fast-vs-precise ablation's other arm.
func BenchmarkPreciseAnalysis(b *testing.B) {
	trace := buildBenchTrace(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PreciseAnalyze(trace, DefaultConfig())
	}
}

func TestSummarize(t *testing.T) {
	streams := []StreamInfo{
		{Word: []uint64{1, 2, 3, 4}, Heat: 40},
		{Word: []uint64{5, 6}, Heat: 10},
	}
	s := Summarize(streams, 100)
	if s.Streams != 2 || s.TotalHeat != 50 {
		t.Errorf("summary = %+v", s)
	}
	if s.MinLen != 2 || s.MaxLen != 4 || s.AvgLen != 3 {
		t.Errorf("length stats = %+v", s)
	}
	if s.Coverage != 0.5 || s.AvgHeat != 25 {
		t.Errorf("heat stats = %+v", s)
	}
	if empty := Summarize(nil, 100); empty.Streams != 0 || empty.Coverage != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestMergeIdenticalWords(t *testing.T) {
	streams := []StreamInfo{
		{Word: []uint64{1, 2, 3}, Heat: 30},
		{Word: []uint64{4, 5, 6}, Heat: 20},
		{Word: []uint64{1, 2, 3}, Heat: 12}, // same word as the first
	}
	merged := mergeIdenticalWords(streams)
	if len(merged) != 2 {
		t.Fatalf("merged to %d streams, want 2", len(merged))
	}
	found := false
	for _, s := range merged {
		if len(s.Word) == 3 && s.Word[0] == 1 {
			found = true
			if s.Heat != 42 {
				t.Errorf("merged heat = %d, want 42", s.Heat)
			}
		}
	}
	if !found {
		t.Error("merged stream missing")
	}
}
