// Package hotds extracts hot data streams from a Sequitur grammar.
//
// A hot data stream is a data-reference subsequence v whose regularity
// magnitude v.heat = v.length * v.frequency exceeds a heat threshold H
// (paper §2.3). This package implements the paper's fast approximation
// algorithm (Figure 5): instead of considering every subsequence, it
// considers only the expansions of grammar nonterminals, exploiting
// Sequitur's ability to infer the hierarchical structure of the trace. The
// algorithm runs in time linear in the grammar size.
//
// The package also provides a precise (Larus-style, paper reference [21])
// detector over the raw trace for the fast-vs-precise ablation; see
// precise.go.
package hotds

import (
	"encoding/binary"
	"sort"

	"hotprefetch/internal/sequitur"
)

// Config controls hot data stream detection.
type Config struct {
	// MinLen and MaxLen bound the expansion length of hot nonterminals
	// (paper Figure 5: minLen <= A.length <= maxLen).
	MinLen uint64
	MaxLen uint64

	// MinUnique is the minimum number of distinct references a reported
	// stream must contain. The paper configures the analysis "to only
	// detect streams that are sufficiently long to justify prefetching
	// (i.e., containing more than ten unique references)" (§1). Zero
	// disables the filter.
	MinUnique int

	// Heat is the explicit heat threshold H. If zero, it is derived as
	// MinCoverage of the profiled trace length.
	Heat uint64

	// MinCoverage derives H = MinCoverage * traceLen when Heat is zero.
	// The paper uses streams that "account for at least 1% of the
	// collected trace" (§4.1).
	MinCoverage float64

	// MaxStreams caps the number of reported streams, keeping the hottest.
	// The paper's DFSM sizing argument assumes n <= 100 streams when each
	// covers at least 1% (§3.1). Zero means no cap.
	MaxStreams int
}

// DefaultConfig returns the paper's §4.1 settings: streams longer than ten
// unique references covering at least 1% of the trace.
func DefaultConfig() Config {
	return Config{
		MinLen:      10,
		MaxLen:      100,
		MinUnique:   10,
		MinCoverage: 0.01,
		MaxStreams:  100,
	}
}

// threshold resolves the heat threshold for a trace of the given length.
func (c Config) threshold(traceLen uint64) uint64 {
	if c.Heat > 0 {
		return c.Heat
	}
	h := uint64(c.MinCoverage * float64(traceLen))
	if h == 0 {
		h = 1
	}
	return h
}

// StreamInfo is one detected hot data stream at the symbol level.
type StreamInfo struct {
	Word []uint64 // the stream's reference sequence (interned symbols)
	Heat uint64   // regularity magnitude: len(Word) * frequency
}

// Coverage returns the fraction of a trace of the given length that the
// stream accounts for.
func (s StreamInfo) Coverage(traceLen uint64) float64 {
	if traceLen == 0 {
		return 0
	}
	return float64(s.Heat) / float64(traceLen)
}

// RuleStats exposes the per-nonterminal values computed by the analysis, in
// the layout of the paper's Table 1. It is primarily for tests, tools, and
// the worked-example reproduction.
type RuleStats struct {
	Rule     int // dense rule index in the snapshot
	Index    int // reverse post-order number
	Len      uint64
	Uses     uint64
	ColdUses uint64 // value at the time the rule was considered
	Heat     uint64
	Hot      bool
}

// Analyze extracts hot data streams from a grammar snapshot using the fast
// approximation algorithm of paper Figure 5.
func Analyze(snap *sequitur.Snapshot, cfg Config) []StreamInfo {
	streams, _ := analyze(snap, cfg, false)
	return streams
}

// AnalyzeDetailed additionally returns the per-rule analysis values
// (paper Table 1), ordered by reverse post-order index.
func AnalyzeDetailed(snap *sequitur.Snapshot, cfg Config) ([]StreamInfo, []RuleStats) {
	return analyze(snap, cfg, true)
}

func analyze(snap *sequitur.Snapshot, cfg Config, detailed bool) ([]StreamInfo, []RuleStats) {
	n := len(snap.Rules)
	if n == 0 {
		return nil, nil
	}
	h := cfg.threshold(snap.InputLen)

	// Phase 1: reverse post-order numbering of nonterminals, guaranteeing
	// that whenever B is a child of A, A.index < B.index, so the later
	// passes visit every rule before any of its descendants.
	index := make([]int, n)   // rule -> reverse post-order number
	byIndex := make([]int, n) // reverse post-order number -> rule
	visited := make([]bool, n)
	next := n
	var number func(a int)
	number = func(a int) {
		if visited[a] {
			return
		}
		visited[a] = true
		for _, sym := range snap.Rules[a].Syms {
			if !sym.IsTerminal() {
				number(sym.Rule)
			}
		}
		next--
		index[a] = next
		byIndex[next] = a
	}
	number(0)

	// Phase 2: uses propagation. Every rule's uses is the number of times
	// it occurs in the (unique) parse tree of the whole grammar.
	uses := make([]uint64, n)
	coldUses := make([]uint64, n)
	uses[0], coldUses[0] = 1, 1
	for i := 0; i < n; i++ {
		a := byIndex[i]
		for _, sym := range snap.Rules[a].Syms {
			if !sym.IsTerminal() {
				b := sym.Rule
				uses[b] += uses[a]
				coldUses[b] = uses[b]
			}
		}
	}

	// Phase 3: find hot nonterminals. A rule is hot only if it accounts for
	// enough of the trace on its own — occurrences inside other hot rules'
	// parse trees do not count (that is what coldUses tracks).
	var streams []StreamInfo
	var stats []RuleStats
	if detailed {
		stats = make([]RuleStats, 0, n)
	}
	for i := 0; i < n; i++ {
		a := byIndex[i]
		r := &snap.Rules[a]
		heat := r.Len * coldUses[a]
		hot := a != 0 && // the start rule is never reported
			cfg.MinLen <= r.Len && r.Len <= cfg.MaxLen && h <= heat
		if hot && cfg.MinUnique > 0 {
			hot = countUnique(snap, a) >= cfg.MinUnique
		}
		if detailed {
			stats = append(stats, RuleStats{
				Rule: a, Index: i, Len: r.Len,
				Uses: uses[a], ColdUses: coldUses[a], Heat: heat, Hot: hot,
			})
		}
		if hot {
			streams = append(streams, StreamInfo{Word: snap.Expand(a), Heat: heat})
		}
		subtract := uses[a] - coldUses[a]
		if hot {
			subtract = uses[a]
		}
		if subtract > 0 {
			for _, sym := range r.Syms {
				if !sym.IsTerminal() {
					b := sym.Rule
					if coldUses[b] < subtract {
						coldUses[b] = 0 // clamp: descendants fully subsumed
					} else {
						coldUses[b] -= subtract
					}
				}
			}
		}
	}

	streams = mergeIdenticalWords(streams)
	sortStreams(streams)
	if cfg.MaxStreams > 0 && len(streams) > cfg.MaxStreams {
		streams = streams[:cfg.MaxStreams]
	}
	return streams, stats
}

// mergeIdenticalWords combines streams whose words are identical, summing
// their heat. Distinct grammar rules can expand to the same word (burst
// boundary effects split a stream's occurrences across rules); their parse
// tree occurrences are disjoint, so the heats add.
func mergeIdenticalWords(streams []StreamInfo) []StreamInfo {
	if len(streams) < 2 {
		return streams
	}
	index := make(map[string]int, len(streams))
	out := streams[:0]
	var key []byte
	for _, s := range streams {
		// Fixed-width binary key: no separator discipline to get wrong, no
		// formatting allocations.
		key = key[:0]
		for _, v := range s.Word {
			key = binary.LittleEndian.AppendUint64(key, v)
		}
		if i, ok := index[string(key)]; ok {
			out[i].Heat += s.Heat
			continue
		}
		index[string(key)] = len(out)
		out = append(out, s)
	}
	return out
}

// countUnique counts distinct terminals in rule a's expansion.
func countUnique(snap *sequitur.Snapshot, a int) int {
	seen := make(map[uint64]struct{})
	for _, v := range snap.Expand(a) {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// sortStreams orders streams by descending heat, breaking ties by length
// (longer first) and then lexicographically, so results are deterministic.
func sortStreams(streams []StreamInfo) {
	sort.Slice(streams, func(i, j int) bool {
		a, b := streams[i], streams[j]
		if a.Heat != b.Heat {
			return a.Heat > b.Heat
		}
		if len(a.Word) != len(b.Word) {
			return len(a.Word) > len(b.Word)
		}
		for k := range a.Word {
			if a.Word[k] != b.Word[k] {
				return a.Word[k] < b.Word[k]
			}
		}
		return false
	})
}

// TotalHeat sums the heat of all streams — an upper bound on the number of
// trace references the streams account for.
func TotalHeat(streams []StreamInfo) uint64 {
	var t uint64
	for _, s := range streams {
		t += s.Heat
	}
	return t
}

// Summary aggregates stream-set statistics for reporting tools.
type Summary struct {
	Streams   int
	TotalHeat uint64
	Coverage  float64 // fraction of the trace the streams account for
	MinLen    int
	MaxLen    int
	AvgLen    float64
	AvgHeat   float64
}

// Summarize computes aggregate statistics over a detected stream set for a
// trace of the given length.
func Summarize(streams []StreamInfo, traceLen uint64) Summary {
	s := Summary{Streams: len(streams)}
	if len(streams) == 0 {
		return s
	}
	s.MinLen = len(streams[0].Word)
	totalLen := 0
	for _, st := range streams {
		s.TotalHeat += st.Heat
		l := len(st.Word)
		totalLen += l
		if l < s.MinLen {
			s.MinLen = l
		}
		if l > s.MaxLen {
			s.MaxLen = l
		}
	}
	s.AvgLen = float64(totalLen) / float64(len(streams))
	s.AvgHeat = float64(s.TotalHeat) / float64(len(streams))
	if traceLen > 0 {
		s.Coverage = float64(s.TotalHeat) / float64(traceLen)
	}
	return s
}
