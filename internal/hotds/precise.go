package hotds

// Precise hot data stream detection over the raw trace, standing in for the
// Larus whole-program-paths algorithm the paper cites as the slower, more
// precise alternative (§2.3, reference [21]). The fast Figure 5 algorithm
// only reports whole nonterminal expansions; this detector considers every
// subsequence with length in [MinLen, MaxLen], so it finds hot streams that
// straddle rule boundaries at the cost of O(trace × length-range) work.
//
// Occurrences are counted non-overlapping (greedy left-to-right), matching
// the paper's definition of v.frequency. Windows are bucketed by a 128-bit
// polynomial hash; the two independent hash halves make accidental
// collisions negligible for the trace sizes the online analysis handles.

const (
	hashBase1 uint64 = 1000003
	hashBase2 uint64 = 16777619
)

// PreciseAnalyze detects hot data streams directly from the trace. Unlike
// Analyze it does not need a grammar, but its running time grows with the
// product of trace length and the [MinLen, MaxLen] range.
func PreciseAnalyze(trace []uint64, cfg Config) []StreamInfo {
	n := uint64(len(trace))
	if n == 0 || cfg.MaxLen == 0 || cfg.MinLen > n {
		return nil
	}
	h := cfg.threshold(n)
	maxLen := cfg.MaxLen
	if maxLen > n {
		maxLen = n
	}
	minLen := cfg.MinLen
	if minLen == 0 {
		minLen = 1
	}

	type hkey struct{ h1, h2 uint64 }
	var candidates []StreamInfo
	positions := make(map[hkey][]int)

	for length := minLen; length <= maxLen; length++ {
		l := int(length)
		// The most frequent window of this length occurs at most n/length
		// times non-overlapping; skip lengths that cannot reach the
		// threshold.
		if length*(n/length) < h {
			continue
		}
		clear(positions)
		// Rolling hashes of every window of this length.
		var p1, p2 uint64 = 1, 1
		for i := 0; i < l-1; i++ {
			p1 *= hashBase1
			p2 *= hashBase2
		}
		var h1, h2 uint64
		for i := 0; i < l; i++ {
			h1 = h1*hashBase1 + trace[i]
			h2 = h2*hashBase2 + trace[i]
		}
		positions[hkey{h1, h2}] = append(positions[hkey{h1, h2}], 0)
		for i := l; i < int(n); i++ {
			h1 = (h1-trace[i-l]*p1)*hashBase1 + trace[i]
			h2 = (h2-trace[i-l]*p2)*hashBase2 + trace[i]
			k := hkey{h1, h2}
			positions[k] = append(positions[k], i-l+1)
		}
		// Count non-overlapping occurrences greedily per bucket.
		for _, pos := range positions {
			if len(pos) < 2 {
				continue
			}
			count := uint64(0)
			lastEnd := -1
			first := -1
			for _, p := range pos {
				if p >= lastEnd {
					if first < 0 {
						first = p
					}
					count++
					lastEnd = p + l
				}
			}
			heat := length * count
			if count >= 2 && heat >= h {
				word := append([]uint64(nil), trace[first:first+l]...)
				if cfg.MinUnique > 0 && uniqueCount(word) < cfg.MinUnique {
					continue
				}
				candidates = append(candidates, StreamInfo{Word: word, Heat: heat})
			}
		}
	}

	// Subsumption: drop streams that are substrings of an already-kept
	// hotter (or equally hot) stream — they carry no extra prefetching
	// opportunity.
	sortStreams(candidates)
	var kept []StreamInfo
	for _, c := range candidates {
		subsumed := false
		for _, k := range kept {
			if len(c.Word) <= len(k.Word) && containsSub(k.Word, c.Word) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			kept = append(kept, c)
		}
	}
	if cfg.MaxStreams > 0 && len(kept) > cfg.MaxStreams {
		kept = kept[:cfg.MaxStreams]
	}
	return kept
}

// uniqueCount counts distinct symbols in word.
func uniqueCount(word []uint64) int {
	seen := make(map[uint64]struct{}, len(word))
	for _, v := range word {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// containsSub reports whether needle occurs as a contiguous subsequence of
// hay.
func containsSub(hay, needle []uint64) bool {
	if len(needle) == 0 {
		return true
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// CoverageOf computes the fraction of the trace accounted for by a stream
// set, counting each trace position at most once (greedy non-overlapping
// matching of each stream, hottest first). It is used by the fast-vs-precise
// ablation to compare detection quality.
func CoverageOf(trace []uint64, streams []StreamInfo) float64 {
	if len(trace) == 0 || len(streams) == 0 {
		return 0
	}
	covered := make([]bool, len(trace))
	ordered := append([]StreamInfo(nil), streams...)
	sortStreams(ordered)
	for _, s := range ordered {
		w := s.Word
		if len(w) == 0 || len(w) > len(trace) {
			continue
		}
	scan:
		for i := 0; i+len(w) <= len(trace); i++ {
			for j := range w {
				if trace[i+j] != w[j] || covered[i+j] {
					continue scan
				}
			}
			for j := range w {
				covered[i+j] = true
			}
			i += len(w) - 1
		}
	}
	n := 0
	for _, c := range covered {
		if c {
			n++
		}
	}
	return float64(n) / float64(len(trace))
}
