package machine

import "fmt"

// Version selects one of the two procedure bodies created by static
// instrumentation for bursty tracing (paper Figure 2).
type Version uint8

const (
	// VersionChecking is the lightly-instrumented version: it executes
	// checks but does not profile data references.
	VersionChecking Version = 0
	// VersionInstrumented additionally profiles data references (memory
	// ops carry the Traced flag).
	VersionInstrumented Version = 1
)

// NoRedirect marks a procedure whose entry has not been patched.
const NoRedirect = -1

// Proc is a procedure. Body holds the checking and instrumented versions;
// for a program that has not been statically instrumented both entries alias
// the same slice. The two versions are always index-aligned so that a check
// can transfer control between them at the current instruction index.
//
// Redirect implements dynamic Vulcan's entry patching (paper Figure 10 and
// §3.2): when >= 0, the first instruction is conceptually overwritten with
// an unconditional jump to Procs[Redirect], so fresh calls land in the
// optimized clone while return addresses already on the stack keep executing
// this body.
type Proc struct {
	Name     string
	Body     [2][]Instr
	Redirect int

	// CloneOf is the index of the procedure this one was cloned from by the
	// dynamic optimizer, or NoRedirect for original procedures.
	CloneOf int
}

// Code returns the body for the given version.
func (p *Proc) Code(v Version) []Instr { return p.Body[v] }

// Program is a complete executable: a set of procedures and an entry point.
type Program struct {
	Procs  []*Proc
	Entry  int
	nextPC int32
}

// ProcIndex returns the index of the named procedure, or -1.
func (p *Program) ProcIndex(name string) int {
	for i, pr := range p.Procs {
		if pr.Name == name {
			return i
		}
	}
	return -1
}

// AddProc appends a procedure (used by the dynamic optimizer to register
// clones) and returns its index.
func (p *Program) AddProc(pr *Proc) int {
	p.Procs = append(p.Procs, pr)
	return len(p.Procs) - 1
}

// MaxPC returns an exclusive upper bound on stable PC identities in the
// program.
func (p *Program) MaxPC() int { return int(p.nextPC) }

// AllocPC allocates a fresh stable PC identity, used by instrumentation
// passes that insert new instructions.
func (p *Program) AllocPC() int32 {
	pc := p.nextPC
	p.nextPC++
	return pc
}

// NumOriginalRefPCs counts memory instructions among original (non-injected)
// instructions, one per stable PC.
func (p *Program) NumOriginalRefPCs() int {
	seen := make(map[int32]bool)
	for _, pr := range p.Procs {
		if pr.CloneOf != NoRedirect {
			continue
		}
		for _, in := range pr.Body[0] {
			if in.IsMemRef() && in.PC != InjectedPC {
				seen[in.PC] = true
			}
		}
	}
	return len(seen)
}

// Builder assembles a Program procedure by procedure. Calls may reference
// procedures by name before they are defined; Build resolves them.
type Builder struct {
	prog  *Program
	procs []*procBuilder
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{prog: &Program{}}
}

// Proc starts a new procedure with the given name and returns its builder.
// Procedure names must be unique within the program.
func (b *Builder) Proc(name string) *ProcBuilder {
	pb := &procBuilder{name: name, labels: make(map[string]int)}
	b.procs = append(b.procs, pb)
	return &ProcBuilder{pb: pb}
}

// Build finalizes the program with the named entry procedure. It assigns
// stable PCs, resolves labels and call targets, and validates branch targets.
func (b *Builder) Build(entry string) (*Program, error) {
	names := make(map[string]int, len(b.procs))
	for i, pb := range b.procs {
		if _, dup := names[pb.name]; dup {
			return nil, fmt.Errorf("machine: duplicate procedure %q", pb.name)
		}
		names[pb.name] = i
	}
	prog := b.prog
	prog.Procs = make([]*Proc, len(b.procs))
	for i, pb := range b.procs {
		code, err := pb.finalize(names)
		if err != nil {
			return nil, err
		}
		for j := range code {
			code[j].PC = prog.nextPC
			prog.nextPC++
		}
		p := &Proc{Name: pb.name, Redirect: NoRedirect, CloneOf: NoRedirect}
		p.Body[VersionChecking] = code
		p.Body[VersionInstrumented] = code
		prog.Procs[i] = p
	}
	ei, ok := names[entry]
	if !ok {
		return nil, fmt.Errorf("machine: entry procedure %q not defined", entry)
	}
	prog.Entry = ei
	return prog, nil
}

type fixup struct {
	index int    // instruction whose Imm needs patching
	label string // branch target label, or
	call  string // callee name
}

type procBuilder struct {
	name   string
	code   []Instr
	labels map[string]int
	fixups []fixup
}

func (pb *procBuilder) finalize(procNames map[string]int) ([]Instr, error) {
	for _, f := range pb.fixups {
		switch {
		case f.label != "":
			idx, ok := pb.labels[f.label]
			if !ok {
				return nil, fmt.Errorf("machine: %s: undefined label %q", pb.name, f.label)
			}
			pb.code[f.index].Imm = int64(idx)
		case f.call != "":
			pi, ok := procNames[f.call]
			if !ok {
				return nil, fmt.Errorf("machine: %s: call to undefined procedure %q", pb.name, f.call)
			}
			pb.code[f.index].Imm = int64(pi)
		}
	}
	if n := len(pb.code); n == 0 || pb.code[n-1].Op != OpRet {
		return nil, fmt.Errorf("machine: %s: procedure must end with ret", pb.name)
	}
	for i, in := range pb.code {
		if in.isBranch() && (in.Imm < 0 || in.Imm >= int64(len(pb.code))) {
			return nil, fmt.Errorf("machine: %s: instruction %d branches out of range", pb.name, i)
		}
	}
	return pb.code, nil
}

// ProcBuilder emits instructions for one procedure. All emit methods return
// the builder for chaining.
type ProcBuilder struct {
	pb *procBuilder
}

func (p *ProcBuilder) emit(in Instr) *ProcBuilder {
	in.PC = InjectedPC // assigned for real in Build
	p.pb.code = append(p.pb.code, in)
	return p
}

// Nop emits a no-op.
func (p *ProcBuilder) Nop() *ProcBuilder { return p.emit(Instr{Op: OpNop}) }

// Arith emits cost cycles of computation.
func (p *ProcBuilder) Arith(cost int64) *ProcBuilder {
	return p.emit(Instr{Op: OpArith, Imm: cost})
}

// Const emits R[dst] = imm.
func (p *ProcBuilder) Const(dst Reg, imm int64) *ProcBuilder {
	return p.emit(Instr{Op: OpConst, Dst: dst, Imm: imm})
}

// AddImm emits R[dst] = R[src] + imm.
func (p *ProcBuilder) AddImm(dst, src Reg, imm int64) *ProcBuilder {
	return p.emit(Instr{Op: OpAddImm, Dst: dst, Src: src, Imm: imm})
}

// Move emits R[dst] = R[src].
func (p *ProcBuilder) Move(dst, src Reg) *ProcBuilder {
	return p.emit(Instr{Op: OpMove, Dst: dst, Src: src})
}

// Load emits R[dst] = Mem[R[base]+off].
func (p *ProcBuilder) Load(dst, base Reg, off int64) *ProcBuilder {
	return p.emit(Instr{Op: OpLoad, Dst: dst, Src: base, Imm: off})
}

// Store emits Mem[R[base]+off] = R[src].
func (p *ProcBuilder) Store(base Reg, off int64, src Reg) *ProcBuilder {
	return p.emit(Instr{Op: OpStore, Dst: base, Imm: off, Src: src})
}

// Prefetch emits a prefetch of address R[base]+off.
func (p *ProcBuilder) Prefetch(base Reg, off int64) *ProcBuilder {
	return p.emit(Instr{Op: OpPrefetch, Src: base, Imm: off})
}

// Label defines a branch target at the current position.
func (p *ProcBuilder) Label(name string) *ProcBuilder {
	p.pb.labels[name] = len(p.pb.code)
	return p
}

// Loop emits "R[ctr]--; if R[ctr] != 0 goto label" (a counted back-edge).
func (p *ProcBuilder) Loop(ctr Reg, label string) *ProcBuilder {
	p.pb.fixups = append(p.pb.fixups, fixup{index: len(p.pb.code), label: label})
	return p.emit(Instr{Op: OpLoop, Dst: ctr})
}

// Jump emits an unconditional jump to label.
func (p *ProcBuilder) Jump(label string) *ProcBuilder {
	p.pb.fixups = append(p.pb.fixups, fixup{index: len(p.pb.code), label: label})
	return p.emit(Instr{Op: OpJump})
}

// Beqz emits "if R[src] == 0 goto label".
func (p *ProcBuilder) Beqz(src Reg, label string) *ProcBuilder {
	p.pb.fixups = append(p.pb.fixups, fixup{index: len(p.pb.code), label: label})
	return p.emit(Instr{Op: OpBeqz, Src: src})
}

// Bnez emits "if R[src] != 0 goto label" (pointer-chase back-edge).
func (p *ProcBuilder) Bnez(src Reg, label string) *ProcBuilder {
	p.pb.fixups = append(p.pb.fixups, fixup{index: len(p.pb.code), label: label})
	return p.emit(Instr{Op: OpBnez, Src: src})
}

// Call emits a call to the named procedure.
func (p *ProcBuilder) Call(name string) *ProcBuilder {
	p.pb.fixups = append(p.pb.fixups, fixup{index: len(p.pb.code), call: name})
	return p.emit(Instr{Op: OpCall})
}

// CallReg emits an indirect call through the procedure index in R[src].
func (p *ProcBuilder) CallReg(src Reg) *ProcBuilder {
	return p.emit(Instr{Op: OpCallIndirect, Src: src})
}

// ConstProc emits R[dst] = index of the named procedure, for building
// dispatch tables used with CallReg. The index is resolved at Build time.
func (p *ProcBuilder) ConstProc(dst Reg, name string) *ProcBuilder {
	p.pb.fixups = append(p.pb.fixups, fixup{index: len(p.pb.code), call: name})
	return p.emit(Instr{Op: OpConst, Dst: dst})
}

// Ret emits a return.
func (p *ProcBuilder) Ret() *ProcBuilder { return p.emit(Instr{Op: OpRet}) }

// Check emits a bursty-tracing check site. Workload generators place one at
// each procedure entry and loop head, standing in for the static Vulcan pass
// that rewrites binaries before execution (paper §2.1, Figure 2; the paper's
// checks sit at procedure entries and loop back-edges).
func (p *ProcBuilder) Check() *ProcBuilder { return p.emit(Instr{Op: OpCheck}) }

// Len returns the number of instructions emitted so far.
func (p *ProcBuilder) Len() int { return len(p.pb.code) }
