// Package machine implements the execution substrate of the reproduction: a
// small register/heap virtual instruction set, a deterministic interpreter
// with cycle accounting, and a program builder.
//
// Substitution note (see DESIGN.md §2): the paper instruments and patches
// native x86 binaries with Vulcan and runs them on real hardware. Go programs
// cannot be binary-patched at runtime, so the reproduction executes workloads
// written in this virtual ISA instead. Programs are first-class data
// (procedures are instruction slices), which lets the vulcan package perform
// the same operations dynamic Vulcan performs: duplicating procedure bodies
// for bursty tracing, cloning procedures, injecting check/prefetch
// instructions, overwriting procedure entries with jumps, and de-optimizing
// by removing them. Every load and store produces a (pc, addr) data
// reference, and the interpreter charges cache stall cycles through the
// memsim hierarchy, so execution time responds to prefetching exactly as the
// paper's platform does.
package machine

// Word is the machine word: values, addresses, and loop counters.
type Word = uint64

// Reg identifies one of the NumRegs general-purpose registers.
type Reg = uint8

// NumRegs is the size of the register file.
const NumRegs = 16

// Opcode enumerates the virtual instruction set.
type Opcode uint8

const (
	// OpNop does nothing (1 cycle).
	OpNop Opcode = iota

	// OpArith models Imm cycles of pure computation (ALU work between
	// memory references). It keeps the instruction count low while letting
	// workloads control their compute-to-memory ratio.
	OpArith

	// OpConst sets R[Dst] = Imm.
	OpConst

	// OpAddImm sets R[Dst] = R[Src] + Imm.
	OpAddImm

	// OpMove sets R[Dst] = R[Src].
	OpMove

	// OpLoad performs R[Dst] = Mem[R[Src]+Imm]. It is a data reference
	// (pc, addr) and consults the cache hierarchy. Loaded words are often
	// pointers, enabling pointer-chasing traversals.
	OpLoad

	// OpStore performs Mem[R[Dst]+Imm] = R[Src]. It is a data reference and
	// consults the cache hierarchy.
	OpStore

	// OpLoop decrements R[Dst] and jumps to instruction index Imm within
	// the current procedure if the result is non-zero (a counted loop
	// back-edge).
	OpLoop

	// OpJump jumps unconditionally to instruction index Imm.
	OpJump

	// OpBeqz jumps to index Imm if R[Src] == 0.
	OpBeqz

	// OpBnez jumps to index Imm if R[Src] != 0 (pointer-chase back-edge).
	OpBnez

	// OpCall invokes Procs[Imm]; OpRet returns to the caller. The entry
	// procedure's OpRet halts the machine.
	OpCall
	OpRet

	// OpCallIndirect invokes Procs[R[Src]] — function-pointer dispatch, as
	// in object-database workloads with per-type handlers. The target is
	// bounds-checked at execution time.
	OpCallIndirect

	// OpCheck is a bursty-tracing check site (procedure entry or loop
	// back-edge, paper Figure 2). The runtime decides whether execution
	// continues in the checking or the instrumented version of the code.
	OpCheck

	// OpMatch is injected by the dynamic optimizer after a memory
	// instruction. It drives the prefix-matching DFSM with the preceding
	// data reference (Imm holds that instruction's stable PC) and issues
	// the prefetches attached to the reached state (paper Figure 7).
	OpMatch

	// OpPrefetch issues a non-blocking prefetch of address R[Src]+Imm
	// (the prefetcht0 analog), for use by hand-written example programs.
	OpPrefetch

	numOpcodes
)

var opNames = [numOpcodes]string{
	OpNop:          "nop",
	OpArith:        "arith",
	OpConst:        "const",
	OpAddImm:       "addimm",
	OpMove:         "move",
	OpLoad:         "load",
	OpStore:        "store",
	OpLoop:         "loop",
	OpJump:         "jump",
	OpBeqz:         "beqz",
	OpBnez:         "bnez",
	OpCall:         "call",
	OpRet:          "ret",
	OpCallIndirect: "calli",
	OpCheck:        "check",
	OpMatch:        "match",
	OpPrefetch:     "prefetch",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "op?"
}

// InjectedPC is the PC value carried by instructions inserted by the dynamic
// optimizer; they are not part of the original program and never produce
// profiled data references.
const InjectedPC = -1

// Instr is a single instruction. PC is the stable instruction identity
// assigned when the program is built; it is preserved when procedures are
// duplicated or cloned, so data references from clones remain attributable
// to the original instruction (the property dynamic Vulcan relies on).
type Instr struct {
	Op     Opcode
	Dst    Reg
	Src    Reg
	Traced bool // set on memory ops in the instrumented (profiling) version
	PC     int32
	Imm    int64
}

// IsMemRef reports whether the instruction produces a data reference.
func (in Instr) IsMemRef() bool { return in.Op == OpLoad || in.Op == OpStore }

// isBranch reports whether Imm is an intra-procedure instruction index that
// must be remapped when instructions are inserted into a body.
func (in Instr) isBranch() bool {
	switch in.Op {
	case OpLoop, OpJump, OpBeqz, OpBnez:
		return true
	}
	return false
}
