package machine

import (
	"strings"
	"testing"
	"testing/quick"

	"hotprefetch/internal/memsim"
)

func testCacheCfg() memsim.Config {
	return memsim.Config{
		BlockSize: 32, L1Size: 256, L1Assoc: 2, L2Size: 512, L2Assoc: 2,
		L2HitLatency: 10, MemLatency: 100,
	}
}

func mustBuild(t *testing.T, b *Builder, entry string) *Program {
	t.Helper()
	p, err := b.Build(entry)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArithmeticSemantics(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 40).
		AddImm(2, 1, 2). // r2 = 42
		Move(3, 2).
		Ret()
	m := New(mustBuild(t, b, "main"), 64, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 42 || m.Regs[3] != 42 {
		t.Errorf("regs = %d/%d, want 42/42", m.Regs[2], m.Regs[3])
	}
}

func TestLoadStoreRoundtrip(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 0x40). // address
		Const(2, 1234).
		Store(1, 0, 2).
		Load(3, 1, 0).
		Ret()
	m := New(mustBuild(t, b, "main"), 64, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 1234 {
		t.Errorf("loaded %d, want 1234", m.Regs[3])
	}
	if m.Stats.Refs != 2 {
		t.Errorf("Refs = %d, want 2", m.Stats.Refs)
	}
	cs := m.Cache.Stats()
	if cs.Loads != 1 || cs.Stores != 1 {
		t.Errorf("cache loads/stores = %d/%d, want 1/1", cs.Loads, cs.Stores)
	}
}

func TestLoadOffsetAddressing(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 0x100).
		Const(2, 7).
		Store(1, 16, 2). // Mem[0x110] = 7
		Load(3, 1, 16).
		Ret()
	m := New(mustBuild(t, b, "main"), 1024, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 7 {
		t.Errorf("loaded %d, want 7", m.Regs[3])
	}
	if m.ReadWord(0x110) != 7 {
		t.Errorf("Mem[0x110] = %d, want 7", m.ReadWord(0x110))
	}
}

func TestCountedLoop(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 10). // counter
		Const(2, 0).  // accumulator
		Label("head").
		AddImm(2, 2, 3).
		Loop(1, "head").
		Ret()
	m := New(mustBuild(t, b, "main"), 64, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 30 {
		t.Errorf("accumulator = %d, want 30 (10 iterations x 3)", m.Regs[2])
	}
}

func TestConditionalBranches(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 0).
		Const(2, 5).
		Beqz(1, "taken").
		Const(3, 111). // skipped
		Label("taken").
		Bnez(2, "also").
		Const(3, 222). // skipped
		Label("also").
		Const(4, 9).
		Ret()
	m := New(mustBuild(t, b, "main"), 64, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 0 || m.Regs[4] != 9 {
		t.Errorf("r3=%d r4=%d, want 0/9", m.Regs[3], m.Regs[4])
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 1).
		Call("helper").
		AddImm(1, 1, 100).
		Ret()
	b.Proc("helper").
		AddImm(1, 1, 10).
		Ret()
	m := New(mustBuild(t, b, "main"), 64, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 111 {
		t.Errorf("r1 = %d, want 111", m.Regs[1])
	}
	if m.Stats.Calls != 1 {
		t.Errorf("Calls = %d, want 1", m.Stats.Calls)
	}
}

func TestArithCost(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Arith(50).
		Ret()
	m := New(mustBuild(t, b, "main"), 64, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	// Arith(50) costs 50 cycles total, Ret costs 1.
	if m.Cycles != 51 {
		t.Errorf("Cycles = %d, want 51", m.Cycles)
	}
}

func TestTrapOnOutOfRangeLoad(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 1<<40).
		Load(2, 1, 0).
		Ret()
	m := New(mustBuild(t, b, "main"), 64, testCacheCfg())
	err := m.RunToCompletion()
	if err == nil {
		t.Fatal("want trap on out-of-range load")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("unexpected trap: %v", err)
	}
}

func TestTrapOnStackOverflow(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Call("main").
		Ret()
	m := New(mustBuild(t, b, "main"), 64, testCacheCfg())
	err := m.RunToCompletion()
	if err == nil {
		t.Fatal("want trap on unbounded recursion")
	}
	if !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("unexpected trap: %v", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate proc", func(t *testing.T) {
		b := NewBuilder()
		b.Proc("p").Ret()
		b.Proc("p").Ret()
		if _, err := b.Build("p"); err == nil {
			t.Error("want duplicate-procedure error")
		}
	})
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder()
		b.Proc("p").Jump("nowhere").Ret()
		if _, err := b.Build("p"); err == nil {
			t.Error("want undefined-label error")
		}
	})
	t.Run("undefined call", func(t *testing.T) {
		b := NewBuilder()
		b.Proc("p").Call("ghost").Ret()
		if _, err := b.Build("p"); err == nil {
			t.Error("want undefined-procedure error")
		}
	})
	t.Run("missing ret", func(t *testing.T) {
		b := NewBuilder()
		b.Proc("p").Nop()
		if _, err := b.Build("p"); err == nil {
			t.Error("want missing-ret error")
		}
	})
	t.Run("missing entry", func(t *testing.T) {
		b := NewBuilder()
		b.Proc("p").Ret()
		if _, err := b.Build("main"); err == nil {
			t.Error("want missing-entry error")
		}
	})
}

func TestStablePCsAssigned(t *testing.T) {
	b := NewBuilder()
	b.Proc("a").Nop().Nop().Ret()
	b.Proc("b").Nop().Ret()
	p := mustBuild(t, b, "a")
	seen := map[int32]bool{}
	for _, pr := range p.Procs {
		for _, in := range pr.Body[0] {
			if in.PC == InjectedPC {
				t.Fatal("built instruction has no stable PC")
			}
			if seen[in.PC] {
				t.Fatalf("duplicate PC %d", in.PC)
			}
			seen[in.PC] = true
		}
	}
	if len(seen) != p.MaxPC() {
		t.Errorf("MaxPC = %d, want %d", p.MaxPC(), len(seen))
	}
}

// versionedRT switches to the instrumented version at every check and counts
// traced refs.
type versionedRT struct {
	version    Version
	checkCost  uint64
	traceCost  uint64
	checks     int
	tracedRefs int
}

func (r *versionedRT) Check(pc int) (Version, uint64) {
	r.checks++
	return r.version, r.checkCost
}
func (r *versionedRT) TraceRef(pc int, addr Word, isWrite bool) uint64 {
	r.tracedRefs++
	return r.traceCost
}
func (r *versionedRT) Match(pc int, addr Word) ([]Word, uint64) { return nil, 0 }

// duplicateForTest makes Body[1] a traced copy of Body[0], as the vulcan
// static pass does.
func duplicateForTest(p *Program) {
	for _, pr := range p.Procs {
		instr := make([]Instr, len(pr.Body[0]))
		copy(instr, pr.Body[0])
		for i := range instr {
			if instr[i].IsMemRef() {
				instr[i].Traced = true
			}
		}
		pr.Body[VersionInstrumented] = instr
	}
}

func TestCheckSwitchesVersionAndTraces(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Check().
		Const(1, 0x40).
		Load(2, 1, 0).
		Load(3, 1, 8).
		Ret()
	p := mustBuild(t, b, "main")
	duplicateForTest(p)

	// Checking version: no refs traced.
	m := New(p, 64, testCacheCfg())
	rt := &versionedRT{version: VersionChecking}
	m.RT = rt
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if rt.tracedRefs != 0 {
		t.Errorf("checking version traced %d refs, want 0", rt.tracedRefs)
	}
	if rt.checks != 1 {
		t.Errorf("checks = %d, want 1", rt.checks)
	}

	// Instrumented version: both loads traced.
	m2 := New(p, 64, testCacheCfg())
	rt2 := &versionedRT{version: VersionInstrumented}
	m2.RT = rt2
	if err := m2.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if rt2.tracedRefs != 2 {
		t.Errorf("instrumented version traced %d refs, want 2", rt2.tracedRefs)
	}
	if m2.Stats.TracedRefs != 2 {
		t.Errorf("Stats.TracedRefs = %d, want 2", m2.Stats.TracedRefs)
	}
}

func TestCheckCostCharged(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").Check().Ret()
	p := mustBuild(t, b, "main")
	duplicateForTest(p)

	base := New(p, 64, testCacheCfg())
	if err := base.RunToCompletion(); err != nil { // nil runtime: free checks
		t.Fatal(err)
	}

	m := New(p, 64, testCacheCfg())
	m.RT = &versionedRT{version: VersionChecking, checkCost: 5}
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Cycles != base.Cycles+5 {
		t.Errorf("cycles = %d, want %d (base) + 5", m.Cycles, base.Cycles)
	}
}

// matchRT returns fixed prefetch addresses on the nth match.
type matchRT struct {
	fireOn   int
	n        int
	prefetch []Word
	cost     uint64
	gotPC    int
	gotAddr  Word
}

func (r *matchRT) Check(pc int) (Version, uint64)                  { return VersionChecking, 0 }
func (r *matchRT) TraceRef(pc int, addr Word, isWrite bool) uint64 { return 0 }
func (r *matchRT) Match(pc int, addr Word) ([]Word, uint64) {
	r.n++
	r.gotPC = pc
	r.gotAddr = addr
	if r.n == r.fireOn {
		return r.prefetch, r.cost
	}
	return nil, r.cost
}

func TestMatchIssuesPrefetches(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 0x40).
		Load(2, 1, 0).
		Ret()
	p := mustBuild(t, b, "main")

	// Inject an OpMatch after the load, carrying the load's stable PC.
	loadPC := p.Procs[0].Body[0][1].PC
	body := p.Procs[0].Body[0]
	injected := append(body[:2:2], Instr{Op: OpMatch, PC: InjectedPC, Imm: int64(loadPC)})
	injected = append(injected, body[2:]...)
	p.Procs[0].Body[0] = injected
	p.Procs[0].Body[1] = injected

	m := New(p, 1<<16, testCacheCfg())
	rt := &matchRT{fireOn: 1, prefetch: []Word{0x1000, 0x2000}, cost: 3}
	m.RT = rt
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if rt.gotPC != int(loadPC) || rt.gotAddr != 0x40 {
		t.Errorf("match saw (%d, 0x%x), want (%d, 0x40)", rt.gotPC, rt.gotAddr, loadPC)
	}
	if m.Stats.Matches != 1 || m.Stats.Prefetches != 2 {
		t.Errorf("matches/prefetches = %d/%d, want 1/2", m.Stats.Matches, m.Stats.Prefetches)
	}
	cs := m.Cache.Stats()
	if cs.Prefetches != 2 {
		t.Errorf("cache prefetches = %d, want 2", cs.Prefetches)
	}
	if !m.Cache.Contains(1, 0x1000) || !m.Cache.Contains(1, 0x2000) {
		t.Error("prefetched blocks not resident in L1")
	}
}

func TestExplicitPrefetchOp(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 0x800).
		Prefetch(1, 0).
		Ret()
	m := New(mustBuild(t, b, "main"), 1<<10, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if !m.Cache.Contains(1, 0x800) {
		t.Error("explicit prefetch did not fill L1")
	}
}

func TestRedirectPatchesFreshCalls(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Call("f").
		Ret()
	b.Proc("f").
		Const(1, 1).
		Ret()
	p := mustBuild(t, b, "main")

	// Build a clone of f that sets r1 = 2, register it, and patch f's entry.
	clone := &Proc{Name: "f#clone", Redirect: NoRedirect, CloneOf: p.ProcIndex("f")}
	code := []Instr{
		{Op: OpConst, Dst: 1, Imm: 2, PC: InjectedPC},
		{Op: OpRet, PC: InjectedPC},
	}
	clone.Body[0] = code
	clone.Body[1] = code
	ci := p.AddProc(clone)
	p.Procs[p.ProcIndex("f")].Redirect = ci

	m := New(p, 64, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 2 {
		t.Errorf("r1 = %d, want 2 (clone should run)", m.Regs[1])
	}

	// Deoptimize: remove the jump; original runs again.
	p.Procs[p.ProcIndex("f")].Redirect = NoRedirect
	m2 := New(p, 64, testCacheCfg())
	if err := m2.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m2.Regs[1] != 1 {
		t.Errorf("r1 = %d, want 1 (original after deopt)", m2.Regs[1])
	}
}

func TestResumableRunMatchesSingleRun(t *testing.T) {
	build := func() *Machine {
		b := NewBuilder()
		b.Proc("main").
			Const(1, 200).
			Const(2, 0x40).
			Label("head").
			Load(3, 2, 0).
			Arith(3).
			Loop(1, "head").
			Ret()
		return New(mustBuild(t, b, "main"), 1<<10, testCacheCfg())
	}
	one := build()
	if err := one.RunToCompletion(); err != nil {
		t.Fatal(err)
	}

	chunked := build()
	chunked.Start()
	for {
		st, err := chunked.Run(17)
		if err != nil {
			t.Fatal(err)
		}
		if st == Halted {
			break
		}
	}
	if one.Cycles != chunked.Cycles || one.Stats != chunked.Stats {
		t.Errorf("chunked run diverged: cycles %d vs %d, stats %+v vs %+v",
			one.Cycles, chunked.Cycles, one.Stats, chunked.Stats)
	}
}

// Property: execution is deterministic — two machines running the same
// program over the same heap produce identical cycle counts and stats.
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed uint8, iters uint8) bool {
		n := int64(iters%50) + 2
		b := NewBuilder()
		b.Proc("main").
			Const(1, n).
			Const(2, int64(seed)*8).
			Label("head").
			Load(3, 2, 0).
			AddImm(2, 2, 32).
			Arith(2).
			Loop(1, "head").
			Ret()
		p, err := b.Build("main")
		if err != nil {
			return false
		}
		run := func() (uint64, Stats) {
			m := New(p, 1<<12, testCacheCfg())
			if err := m.RunToCompletion(); err != nil {
				return 0, Stats{}
			}
			return m.Cycles, m.Stats
		}
		c1, s1 := run()
		c2, s2 := run()
		return c1 == c2 && s1 == s2 && c1 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op := OpNop; op < numOpcodes; op++ {
		if op.String() == "" || op.String() == "op?" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if Opcode(200).String() != "op?" {
		t.Error("out-of-range opcode should stringify as op?")
	}
}

func BenchmarkInterpreterLoop(b *testing.B) {
	bl := NewBuilder()
	bl.Proc("main").
		Const(1, 1000).
		Const(2, 0).
		Label("head").
		Load(3, 2, 0).
		AddImm(2, 2, 32).
		Arith(2).
		Loop(1, "head").
		Ret()
	p, err := bl.Build("main")
	if err != nil {
		b.Fatal(err)
	}
	m := New(p, 1<<16, memsim.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Regs = [NumRegs]Word{}
		if err := m.RunToCompletion(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIndirectCallDispatch(t *testing.T) {
	// A two-entry dispatch table in memory; main loads a handler index and
	// calls through it — the object-database dispatch pattern.
	b := NewBuilder()
	b.Proc("main").
		ConstProc(1, "handlerA").
		ConstProc(2, "handlerB").
		Const(3, 0x100).
		Store(3, 0, 1). // table[0] = handlerA
		Store(3, 8, 2). // table[1] = handlerB
		Load(4, 3, 8).  // pick handlerB
		CallReg(4).
		Ret()
	b.Proc("handlerA").Const(5, 111).Ret()
	b.Proc("handlerB").Const(5, 222).Ret()
	m := New(mustBuild(t, b, "main"), 1<<10, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[5] != 222 {
		t.Errorf("r5 = %d, want 222 (handlerB)", m.Regs[5])
	}
}

func TestIndirectCallHonorsRedirect(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		ConstProc(1, "f").
		CallReg(1).
		Ret()
	b.Proc("f").Const(2, 1).Ret()
	p := mustBuild(t, b, "main")
	clone := &Proc{Name: "f#opt", Redirect: NoRedirect, CloneOf: p.ProcIndex("f")}
	code := []Instr{{Op: OpConst, Dst: 2, Imm: 9, PC: InjectedPC}, {Op: OpRet, PC: InjectedPC}}
	clone.Body[0], clone.Body[1] = code, code
	p.Procs[p.ProcIndex("f")].Redirect = p.AddProc(clone)

	m := New(p, 64, testCacheCfg())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 9 {
		t.Errorf("r2 = %d, want 9 (indirect call through patched entry)", m.Regs[2])
	}
}

func TestIndirectCallTrapsOnBadTarget(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 999).
		CallReg(1).
		Ret()
	m := New(mustBuild(t, b, "main"), 64, testCacheCfg())
	err := m.RunToCompletion()
	if err == nil || !strings.Contains(err.Error(), "invalid proc") {
		t.Errorf("want invalid-proc trap, got %v", err)
	}
}

func TestMachineAccessors(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Check().
		Const(1, 0x40).
		Load(2, 1, 0).
		Ret()
	p := mustBuild(t, b, "main")
	duplicateForTest(p)

	if Halted.String() != "halted" || Yielded.String() != "yielded" ||
		CycleLimit.String() != "cycle-limit" || RunStatus(9).String() != "status?" {
		t.Error("RunStatus strings wrong")
	}
	if p.Procs[0].Code(VersionChecking)[0].Op != OpCheck {
		t.Error("Code accessor broken")
	}
	if p.ProcIndex("nope") != -1 {
		t.Error("ProcIndex must return -1 for unknown names")
	}
	if p.NumOriginalRefPCs() != 1 {
		t.Errorf("NumOriginalRefPCs = %d, want 1 (the load)", p.NumOriginalRefPCs())
	}
	before := p.MaxPC()
	if pc := p.AllocPC(); int(pc) != before || p.MaxPC() != before+1 {
		t.Error("AllocPC must hand out the next stable id")
	}

	m := New(p, 64, testCacheCfg())
	m.WriteWord(0x40, 99)
	if m.ReadWord(0x40) != 99 {
		t.Error("WriteWord/ReadWord broken")
	}
	if m.Running() {
		t.Error("machine must not run before Start")
	}
	m.Start()
	if !m.Running() || m.Version() != VersionChecking {
		t.Error("Start must set running/checking state")
	}
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Running() {
		t.Error("machine must stop after halting")
	}
	// Run on a halted machine is a no-op.
	if st, err := m.Run(0); err != nil || st != Halted {
		t.Errorf("Run on halted machine = %v/%v", st, err)
	}
}

// yieldingRT yields from inside a trace callback.
type yieldingRT struct{ m *Machine }

func (r *yieldingRT) Check(pc int) (Version, uint64) { return VersionInstrumented, 0 }
func (r *yieldingRT) TraceRef(pc int, addr Word, isWrite bool) uint64 {
	r.m.Yield()
	return 0
}
func (r *yieldingRT) Match(pc int, addr Word) ([]Word, uint64) { return nil, 0 }

func TestYieldFromTraceCallback(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Check().
		Const(1, 0x40).
		Load(2, 1, 0).
		Load(3, 1, 8).
		Ret()
	p := mustBuild(t, b, "main")
	duplicateForTest(p)
	m := New(p, 64, testCacheCfg())
	m.RT = &yieldingRT{m: m}
	m.Start()
	yields := 0
	for {
		st, err := m.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if st == Halted {
			break
		}
		if st != Yielded {
			t.Fatalf("status = %v, want Yielded", st)
		}
		yields++
		if yields > 10 {
			t.Fatal("runaway yielding")
		}
	}
	if yields != 2 {
		t.Errorf("yields = %d, want 2 (one per traced load)", yields)
	}
	if m.Stats.TracedRefs != 2 {
		t.Errorf("traced refs = %d, want 2", m.Stats.TracedRefs)
	}
}
