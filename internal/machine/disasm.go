package machine

import (
	"fmt"
	"strings"
)

// Disasm renders one instruction in a readable assembly-like form. Branch
// targets are intra-procedure instruction indices.
func (in Instr) Disasm() string {
	traced := ""
	if in.Traced {
		traced = " !traced"
	}
	switch in.Op {
	case OpNop:
		return "nop"
	case OpArith:
		return fmt.Sprintf("arith %d", in.Imm)
	case OpConst:
		return fmt.Sprintf("const r%d, %d", in.Dst, in.Imm)
	case OpAddImm:
		return fmt.Sprintf("addimm r%d, r%d, %d", in.Dst, in.Src, in.Imm)
	case OpMove:
		return fmt.Sprintf("move r%d, r%d", in.Dst, in.Src)
	case OpLoad:
		return fmt.Sprintf("load r%d, [r%d+%d]%s", in.Dst, in.Src, in.Imm, traced)
	case OpStore:
		return fmt.Sprintf("store [r%d+%d], r%d%s", in.Dst, in.Imm, in.Src, traced)
	case OpLoop:
		return fmt.Sprintf("loop r%d, @%d", in.Dst, in.Imm)
	case OpJump:
		return fmt.Sprintf("jump @%d", in.Imm)
	case OpBeqz:
		return fmt.Sprintf("beqz r%d, @%d", in.Src, in.Imm)
	case OpBnez:
		return fmt.Sprintf("bnez r%d, @%d", in.Src, in.Imm)
	case OpCall:
		return fmt.Sprintf("call proc%d", in.Imm)
	case OpCallIndirect:
		return fmt.Sprintf("calli r%d", in.Src)
	case OpRet:
		return "ret"
	case OpCheck:
		return "check"
	case OpMatch:
		return fmt.Sprintf("match pc%d", in.Imm)
	case OpPrefetch:
		return fmt.Sprintf("prefetch [r%d+%d]", in.Src, in.Imm)
	}
	return fmt.Sprintf("op?%d", in.Op)
}

// Disasm renders a procedure's version as indexed assembly, one instruction
// per line, annotated with stable PCs.
func (p *Proc) Disasm(v Version) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", p.Name)
	if p.Redirect != NoRedirect {
		fmt.Fprintf(&b, " ; entry patched -> proc%d", p.Redirect)
	}
	if p.CloneOf != NoRedirect {
		fmt.Fprintf(&b, " ; clone of proc%d", p.CloneOf)
	}
	b.WriteByte('\n')
	for i, in := range p.Body[v] {
		pc := "  inj"
		if in.PC != InjectedPC {
			pc = fmt.Sprintf("pc%3d", in.PC)
		}
		fmt.Fprintf(&b, "  %4d %s  %s\n", i, pc, in.Disasm())
	}
	return b.String()
}

// Disasm renders the whole program (checking version) for debugging.
func (p *Program) Disasm() string {
	var b strings.Builder
	for i, proc := range p.Procs {
		fmt.Fprintf(&b, "; proc%d\n%s\n", i, proc.Disasm(VersionChecking))
	}
	return b.String()
}
