package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a program in the textual assembly format and builds it.
// The format is line-oriented:
//
//	; comment
//	proc main            ; start a procedure
//	  const r1, 100
//	head:                ; label
//	  load r2, [r1+8]
//	  store [r1+16], r2
//	  arith 3
//	  check              ; explicit bursty-tracing check site
//	  prefetch [r2+0]
//	  loop r1, head
//	  beqz r2, head
//	  call helper
//	  ret
//
// The first procedure is the entry point unless one is named "main".
// Offsets in memory operands may be negative; registers are r0..r15.
func Assemble(src string) (*Program, error) {
	b := NewBuilder()
	var pb *ProcBuilder
	entry := ""
	first := ""

	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("asm: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}

		if line == "proc" || strings.HasPrefix(line, "proc ") {
			name := strings.TrimSpace(strings.TrimPrefix(line, "proc"))
			if name == "" {
				return nil, fail("proc needs a name")
			}
			pb = b.Proc(name)
			if first == "" {
				first = name
			}
			if name == "main" {
				entry = "main"
			}
			continue
		}
		if pb == nil {
			return nil, fail("instruction outside a proc")
		}
		if label, ok := strings.CutSuffix(line, ":"); ok {
			if strings.ContainsAny(label, " \t") {
				return nil, fail("malformed label %q", label)
			}
			pb.Label(label)
			continue
		}

		op, rest, _ := strings.Cut(line, " ")
		args := splitArgs(rest)
		if err := emit(pb, op, args); err != nil {
			return nil, fail("%v", err)
		}
	}
	if entry == "" {
		entry = first
	}
	if entry == "" {
		return nil, fmt.Errorf("asm: no procedures defined")
	}
	return b.Build(entry)
}

// splitArgs splits "r1, [r2+8]" into {"r1", "[r2+8]"}.
func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func emit(pb *ProcBuilder, op string, args []string) error {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "nop":
		if err := need(0); err != nil {
			return err
		}
		pb.Nop()
	case "ret":
		if err := need(0); err != nil {
			return err
		}
		pb.Ret()
	case "check":
		if err := need(0); err != nil {
			return err
		}
		pb.Check()
	case "arith":
		if err := need(1); err != nil {
			return err
		}
		n, err := parseImm(args[0])
		if err != nil {
			return err
		}
		pb.Arith(n)
	case "const":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		n, err := parseImm(args[1])
		if err != nil {
			return err
		}
		pb.Const(r, n)
	case "move":
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		s, err := parseReg(args[1])
		if err != nil {
			return err
		}
		pb.Move(d, s)
	case "addimm":
		if err := need(3); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		s, err := parseReg(args[1])
		if err != nil {
			return err
		}
		n, err := parseImm(args[2])
		if err != nil {
			return err
		}
		pb.AddImm(d, s, n)
	case "load":
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		pb.Load(d, base, off)
	case "store":
		if err := need(2); err != nil {
			return err
		}
		base, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		s, err := parseReg(args[1])
		if err != nil {
			return err
		}
		pb.Store(base, off, s)
	case "prefetch":
		if err := need(1); err != nil {
			return err
		}
		base, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		pb.Prefetch(base, off)
	case "loop":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		pb.Loop(r, args[1])
	case "jump":
		if err := need(1); err != nil {
			return err
		}
		pb.Jump(args[0])
	case "beqz":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		pb.Beqz(r, args[1])
	case "bnez":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		pb.Bnez(r, args[1])
	case "call":
		if err := need(1); err != nil {
			return err
		}
		pb.Call(args[0])
	case "calli":
		if err := need(1); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		pb.CallReg(r)
	case "constproc":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		pb.ConstProc(r, args[1])
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	return nil
}

func parseReg(s string) (Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int64, error) {
	n, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return n, nil
}

// parseMem parses "[rN+off]" or "[rN-off]" or "[rN]".
func parseMem(s string) (Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("expected memory operand [rN+off], got %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(inner[sep:], 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, off, nil
}
