package machine

import (
	"strings"
	"testing"
)

func TestDisasmCoversAllOpcodes(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpArith, Imm: 5}, "arith 5"},
		{Instr{Op: OpConst, Dst: 1, Imm: 42}, "const r1, 42"},
		{Instr{Op: OpAddImm, Dst: 1, Src: 2, Imm: 8}, "addimm r1, r2, 8"},
		{Instr{Op: OpMove, Dst: 3, Src: 4}, "move r3, r4"},
		{Instr{Op: OpLoad, Dst: 5, Src: 6, Imm: 16}, "load r5, [r6+16]"},
		{Instr{Op: OpLoad, Dst: 5, Src: 6, Traced: true}, "load r5, [r6+0] !traced"},
		{Instr{Op: OpStore, Dst: 7, Src: 8, Imm: 24}, "store [r7+24], r8"},
		{Instr{Op: OpLoop, Dst: 1, Imm: 3}, "loop r1, @3"},
		{Instr{Op: OpJump, Imm: 9}, "jump @9"},
		{Instr{Op: OpBeqz, Src: 2, Imm: 4}, "beqz r2, @4"},
		{Instr{Op: OpBnez, Src: 2, Imm: 4}, "bnez r2, @4"},
		{Instr{Op: OpCall, Imm: 1}, "call proc1"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpCheck}, "check"},
		{Instr{Op: OpMatch, Imm: 17}, "match pc17"},
		{Instr{Op: OpPrefetch, Src: 3, Imm: 8}, "prefetch [r3+8]"},
	}
	for _, c := range cases {
		if got := c.in.Disasm(); got != c.want {
			t.Errorf("Disasm(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := (Instr{Op: Opcode(99)}).Disasm(); !strings.HasPrefix(got, "op?") {
		t.Errorf("unknown opcode disasm = %q", got)
	}
}

func TestProcAndProgramDisasm(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Const(1, 3).
		Label("head").
		Load(2, 1, 0).
		Loop(1, "head").
		Call("leaf").
		Ret()
	b.Proc("leaf").Ret()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	p.Procs[1].Redirect = 0 // fake patch for rendering

	out := p.Disasm()
	for _, want := range []string{"main:", "leaf:", "const r1, 3", "loop r1, @1",
		"call proc1", "entry patched -> proc0", "pc"} {
		if !strings.Contains(out, want) {
			t.Errorf("program disasm missing %q:\n%s", want, out)
		}
	}

	clone := &Proc{Name: "x", CloneOf: 0, Redirect: NoRedirect}
	clone.Body[0] = []Instr{{Op: OpMatch, PC: InjectedPC, Imm: 5}, {Op: OpRet, PC: InjectedPC}}
	clone.Body[1] = clone.Body[0]
	out = clone.Disasm(VersionChecking)
	if !strings.Contains(out, "clone of proc0") || !strings.Contains(out, "inj") {
		t.Errorf("clone disasm missing annotations:\n%s", out)
	}
}
