package machine

import "testing"

// FuzzAssemble feeds arbitrary text to the assembler: it must either return
// an error or produce a program every instruction of which disassembles,
// without panicking.
func FuzzAssemble(f *testing.F) {
	f.Add("proc main\n const r1, 10\nhead:\n load r2, [r1+8]\n loop r1, head\n ret\n")
	f.Add("proc p\n jump nowhere\n ret\n")
	f.Add("garbage")
	f.Add("proc a\n call b\n ret\nproc b\n ret\n")
	f.Add("proc p\n store [r3-16], r2\n prefetch [r0]\n ret\n")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		prog, err := Assemble(src)
		if err != nil {
			return // rejected input is fine
		}
		if prog.Entry < 0 || prog.Entry >= len(prog.Procs) {
			t.Fatalf("entry %d out of range", prog.Entry)
		}
		for _, proc := range prog.Procs {
			body := proc.Body[VersionChecking]
			if n := len(body); n == 0 || body[n-1].Op != OpRet {
				t.Fatal("accepted procedure must end with ret")
			}
			for i, in := range body {
				if in.isBranch() && (in.Imm < 0 || in.Imm >= int64(len(body))) {
					t.Fatalf("instruction %d branches out of range", i)
				}
				if in.Op == OpCall && (in.Imm < 0 || in.Imm >= int64(len(prog.Procs))) {
					t.Fatalf("instruction %d calls out of range", i)
				}
				_ = in.Disasm()
			}
		}
	})
}
