package machine

import (
	"fmt"

	"hotprefetch/internal/memsim"
)

// Runtime receives the interpreter's instrumentation events: bursty-tracing
// checks, profiled data references, and injected DFSM match checks. Each
// callback returns the number of cycles the corresponding inserted code would
// cost, so overhead accounting is owned by the layer that generates the code.
//
// A nil Runtime executes the program with zero instrumentation cost — the
// "original unoptimized program" baseline of the paper's Figure 12.
type Runtime interface {
	// Check is called at each OpCheck site. It returns the version in which
	// execution continues and the cycle cost of the check itself.
	Check(pc int) (Version, uint64)

	// TraceRef is called for each data reference executed with the Traced
	// flag (instrumented version only). It returns the cycle cost of the
	// profiling code (buffer write plus incremental grammar update).
	TraceRef(pc int, addr Word, isWrite bool) uint64

	// Match is called at each injected OpMatch site with the preceding data
	// reference. It returns addresses to prefetch (nil when no complete
	// prefix match occurred) and the cycle cost of the executed comparisons.
	Match(pc int, addr Word) (prefetch []Word, cost uint64)
}

// RunStatus reports why Run returned.
type RunStatus int

const (
	// Halted means the entry procedure returned.
	Halted RunStatus = iota
	// Yielded means the runtime requested a pause (e.g. to run the online
	// analysis and optimization phase).
	Yielded
	// CycleLimit means the cycle budget given to Run was exhausted.
	CycleLimit
)

func (s RunStatus) String() string {
	switch s {
	case Halted:
		return "halted"
	case Yielded:
		return "yielded"
	case CycleLimit:
		return "cycle-limit"
	}
	return "status?"
}

// Trap describes a runtime fault in the simulated program.
type Trap struct {
	Proc   string
	Index  int
	Reason string
}

func (t *Trap) Error() string {
	return fmt.Sprintf("machine: trap in %s@%d: %s", t.Proc, t.Index, t.Reason)
}

// Stats counts dynamic execution events.
type Stats struct {
	Instructions uint64
	Refs         uint64 // data references executed
	TracedRefs   uint64 // references reported to the runtime
	Checks       uint64 // bursty-tracing checks executed
	Matches      uint64 // injected DFSM checks executed
	Prefetches   uint64 // prefetches issued (injected + explicit)
	Calls        uint64
}

// maxStackDepth bounds recursion in simulated programs.
const maxStackDepth = 1 << 16

type frame struct {
	proc int
	idx  int
}

// Machine interprets a Program against a simulated memory and cache
// hierarchy. It is resumable: Run may return Yielded or CycleLimit and be
// called again to continue.
type Machine struct {
	Prog  *Program
	Mem   []Word // simulated heap, word-addressed at addr>>3
	Cache *memsim.Hierarchy
	RT    Runtime

	Regs   [NumRegs]Word
	Cycles uint64
	Stats  Stats

	version Version
	yield   bool
	running bool
	cur     frame
	stack   []frame
	lastRef struct {
		pc   int
		addr Word
	}
}

// New creates a machine for prog with the given heap size in words and cache
// configuration.
func New(prog *Program, heapWords int, cacheCfg memsim.Config) *Machine {
	return &Machine{
		Prog:  prog,
		Mem:   make([]Word, heapWords),
		Cache: memsim.New(cacheCfg),
	}
}

// Start (re)initializes control state at the program entry. Registers,
// memory, cache contents, and counters are left untouched so a caller can
// pre-populate the heap and run multiple times.
func (m *Machine) Start() {
	entry := m.Prog.Entry
	// The entry procedure's patch applies to fresh invocations just as it
	// does to calls (paper Figure 10).
	if r := m.Prog.Procs[entry].Redirect; r != NoRedirect {
		entry = r
	}
	m.cur = frame{proc: entry, idx: 0}
	m.stack = m.stack[:0]
	m.version = VersionChecking
	m.running = true
	m.yield = false
}

// Running reports whether the program has been started and not yet halted.
func (m *Machine) Running() bool { return m.running }

// Yield asks the interpreter to return control after the current
// instruction. It is typically called from inside a Runtime callback.
func (m *Machine) Yield() { m.yield = true }

// Version returns the code version currently executing.
func (m *Machine) Version() Version { return m.version }

// ReadWord returns the heap word at byte address addr (no cache effects).
func (m *Machine) ReadWord(addr Word) Word { return m.Mem[addr>>3] }

// WriteWord sets the heap word at byte address addr (no cache effects).
func (m *Machine) WriteWord(addr, val Word) { m.Mem[addr>>3] = val }

// Run executes until the program halts, the runtime yields, or maxCycles
// additional cycles have elapsed (0 means no limit). It returns the reason
// for stopping.
func (m *Machine) Run(maxCycles uint64) (RunStatus, error) {
	if !m.running {
		return Halted, nil
	}
	limit := ^uint64(0)
	if maxCycles > 0 {
		limit = m.Cycles + maxCycles
	}

	prog := m.Prog
	memWords := uint64(len(m.Mem))
	proc := prog.Procs[m.cur.proc]
	body := proc.Body[m.version]
	idx := m.cur.idx

	trap := func(reason string) (RunStatus, error) {
		m.running = false
		return Halted, &Trap{Proc: proc.Name, Index: idx, Reason: reason}
	}

	for {
		if idx >= len(body) {
			return trap("fell off end of procedure")
		}
		in := &body[idx]
		m.Stats.Instructions++
		m.Cycles++ // base cost of every instruction
		next := idx + 1

		switch in.Op {
		case OpNop:

		case OpArith:
			// Base cycle already charged; Imm is the total intended cost.
			if in.Imm > 1 {
				m.Cycles += uint64(in.Imm - 1)
			}

		case OpConst:
			m.Regs[in.Dst] = Word(in.Imm)

		case OpAddImm:
			m.Regs[in.Dst] = m.Regs[in.Src] + Word(in.Imm)

		case OpMove:
			m.Regs[in.Dst] = m.Regs[in.Src]

		case OpLoad:
			addr := m.Regs[in.Src] + Word(in.Imm)
			if addr>>3 >= memWords {
				return trap(fmt.Sprintf("load out of range: 0x%x", addr))
			}
			m.Stats.Refs++
			m.Cycles += m.Cache.Access(m.Cycles, int(in.PC), addr, false)
			m.Regs[in.Dst] = m.Mem[addr>>3]
			m.lastRef.pc = int(in.PC)
			m.lastRef.addr = addr
			if in.Traced && m.RT != nil {
				m.Stats.TracedRefs++
				m.Cycles += m.RT.TraceRef(int(in.PC), addr, false)
			}

		case OpStore:
			addr := m.Regs[in.Dst] + Word(in.Imm)
			if addr>>3 >= memWords {
				return trap(fmt.Sprintf("store out of range: 0x%x", addr))
			}
			m.Stats.Refs++
			m.Cycles += m.Cache.Access(m.Cycles, int(in.PC), addr, true)
			m.Mem[addr>>3] = m.Regs[in.Src]
			m.lastRef.pc = int(in.PC)
			m.lastRef.addr = addr
			if in.Traced && m.RT != nil {
				m.Stats.TracedRefs++
				m.Cycles += m.RT.TraceRef(int(in.PC), addr, true)
			}

		case OpLoop:
			m.Regs[in.Dst]--
			if m.Regs[in.Dst] != 0 {
				next = int(in.Imm)
			}

		case OpJump:
			next = int(in.Imm)

		case OpBeqz:
			if m.Regs[in.Src] == 0 {
				next = int(in.Imm)
			}

		case OpBnez:
			if m.Regs[in.Src] != 0 {
				next = int(in.Imm)
			}

		case OpCall, OpCallIndirect:
			m.Stats.Calls++
			if len(m.stack) >= maxStackDepth {
				return trap("stack overflow")
			}
			target := int(in.Imm)
			if in.Op == OpCallIndirect {
				target = int(m.Regs[in.Src])
				if target < 0 || target >= len(prog.Procs) {
					return trap(fmt.Sprintf("indirect call to invalid proc %d", target))
				}
			}
			if r := prog.Procs[target].Redirect; r != NoRedirect {
				// Entry was overwritten with a jump to the optimized clone
				// (paper Figure 10); the jump costs one cycle.
				m.Cycles++
				target = r
			}
			m.stack = append(m.stack, frame{proc: m.cur.proc, idx: next})
			m.cur = frame{proc: target, idx: 0}
			proc = prog.Procs[target]
			body = proc.Body[m.version]
			idx = 0
			if m.yield {
				m.yield = false
				m.cur.idx = idx
				return Yielded, nil
			}
			if m.Cycles >= limit {
				m.cur.idx = idx
				return CycleLimit, nil
			}
			continue

		case OpRet:
			if len(m.stack) == 0 {
				m.running = false
				return Halted, nil
			}
			m.cur = m.stack[len(m.stack)-1]
			m.stack = m.stack[:len(m.stack)-1]
			proc = prog.Procs[m.cur.proc]
			body = proc.Body[m.version]
			idx = m.cur.idx
			if m.yield {
				m.yield = false
				return Yielded, nil
			}
			if m.Cycles >= limit {
				return CycleLimit, nil
			}
			continue

		case OpCheck:
			m.Stats.Checks++
			if m.RT != nil {
				v, cost := m.RT.Check(int(in.PC))
				m.Cycles += cost
				if v != m.version {
					m.version = v
					body = proc.Body[v]
					if idx >= len(body) {
						return trap("version bodies not index-aligned")
					}
				}
			}

		case OpMatch:
			m.Stats.Matches++
			if m.RT != nil {
				// Imm carries the stable PC of the associated memory
				// instruction; the reference itself was recorded by the
				// immediately preceding load/store.
				pf, cost := m.RT.Match(int(in.Imm), m.lastRef.addr)
				m.Cycles += cost
				for _, a := range pf {
					m.Stats.Prefetches++
					m.Cycles++ // prefetch issue cost
					m.Cache.Prefetch(m.Cycles, a)
				}
			}

		case OpPrefetch:
			addr := m.Regs[in.Src] + Word(in.Imm)
			m.Stats.Prefetches++
			m.Cache.Prefetch(m.Cycles, addr)

		default:
			return trap(fmt.Sprintf("illegal opcode %d", in.Op))
		}

		idx = next
		if m.yield {
			m.yield = false
			m.cur.idx = idx
			return Yielded, nil
		}
		if m.Cycles >= limit {
			m.cur.idx = idx
			return CycleLimit, nil
		}
	}
}

// RunToCompletion runs until the program halts, propagating traps.
func (m *Machine) RunToCompletion() error {
	m.Start()
	for {
		st, err := m.Run(0)
		if err != nil {
			return err
		}
		if st == Halted {
			return nil
		}
	}
}
