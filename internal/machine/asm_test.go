package machine

import (
	"strings"
	"testing"

	"hotprefetch/internal/memsim"
)

func asmCache() memsim.Config {
	return memsim.Config{
		BlockSize: 32, L1Size: 256, L1Assoc: 2, L2Size: 512, L2Assoc: 2,
		L2HitLatency: 10, MemLatency: 100,
	}
}

func TestAssembleAndRun(t *testing.T) {
	prog, err := Assemble(`
; sum 10 values via a pointer walk
proc main
  const r1, 10
  const r2, 0x100     ; cursor
  const r3, 0         ; sum
head:
  load r4, [r2+0]
  addimm r3, r3, 1
  addimm r2, r2, 8
  arith 2
  loop r1, head
  call finish
  ret

proc finish
  const r5, 0x400
  store [r5+0], r3
  ret
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 1<<10, asmCache())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 10 {
		t.Errorf("r3 = %d, want 10", m.Regs[3])
	}
	if m.ReadWord(0x400) != 10 {
		t.Errorf("Mem[0x400] = %d, want 10", m.ReadWord(0x400))
	}
	if m.Stats.Refs != 11 { // 10 loads + 1 store
		t.Errorf("refs = %d, want 11", m.Stats.Refs)
	}
}

func TestAssembleAllMnemonics(t *testing.T) {
	prog, err := Assemble(`
proc main
  nop
  check
  const r1, 2
  move r2, r1
  addimm r2, r2, -1
  arith 1
  const r3, 0x80
  load r4, [r3]
  load r4, [r3+8]
  store [r3-0], r4
  prefetch [r3+32]
  beqz r4, skip
  nop
skip:
  bnez r1, over
  nop
over:
  jump end
  nop
end:
  loop r1, end2
end2:
  ret
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 1<<10, asmCache())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleEntrySelection(t *testing.T) {
	// "main" wins even when defined second.
	prog, err := Assemble("proc other\n const r1, 1\n ret\nproc main\n const r1, 2\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 64, asmCache())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 2 {
		t.Errorf("entry should be main; r1 = %d", m.Regs[1])
	}

	// Without main, the first procedure is the entry.
	prog2, err := Assemble("proc alpha\n const r1, 7\n ret\nproc beta\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(prog2, 64, asmCache())
	if err := m2.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m2.Regs[1] != 7 {
		t.Errorf("entry should be alpha; r1 = %d", m2.Regs[1])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no procs", "nop\n", "outside a proc"},
		{"empty", "; nothing\n", "no procedures"},
		{"bad mnemonic", "proc p\n frobnicate r1\n ret\n", "unknown mnemonic"},
		{"bad register", "proc p\n const r99, 1\n ret\n", "bad register"},
		{"bad immediate", "proc p\n const r1, xyz\n ret\n", "bad immediate"},
		{"bad mem operand", "proc p\n load r1, r2\n ret\n", "memory operand"},
		{"wrong arity", "proc p\n move r1\n ret\n", "needs 2 operands"},
		{"unnamed proc", "proc \n ret\n", "proc needs a name"},
		{"bad label", "proc p\n a b:\n ret\n", "malformed label"},
		{"undefined label", "proc p\n jump nowhere\n ret\n", "undefined label"},
		{"undefined call", "proc p\n call ghost\n ret\n", "undefined procedure"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestAssembleDisasmRoundTripSemantics(t *testing.T) {
	// Assembling the disassembly of an assembled program yields the same
	// execution (labels become numeric targets in Disasm, so we compare
	// behaviour rather than text).
	src := `
proc main
  const r1, 5
  const r2, 0x40
h:
  load r3, [r2+0]
  addimm r2, r2, 32
  loop r1, h
  ret
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 1<<10, asmCache())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	m2 := New(prog, 1<<10, asmCache())
	if err := m2.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Cycles != m2.Cycles {
		t.Error("re-running an assembled program must be deterministic")
	}
	if !strings.Contains(prog.Disasm(), "loop r1, @2") {
		t.Errorf("unexpected disasm:\n%s", prog.Disasm())
	}
}

func TestAssembleIndirectCall(t *testing.T) {
	prog, err := Assemble(`
proc main
  constproc r1, target
  calli r1
  ret
proc target
  const r2, 77
  ret
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 64, asmCache())
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 77 {
		t.Errorf("r2 = %d, want 77", m.Regs[2])
	}
	if !strings.Contains(prog.Disasm(), "calli r1") {
		t.Errorf("disasm missing calli:\n%s", prog.Disasm())
	}
}
