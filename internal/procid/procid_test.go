package procid

import (
	"runtime"
	"sync"
	"testing"
)

func TestGetInRange(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	for i := 0; i < 1000; i++ {
		if p := Get(); p < 0 || p >= n {
			t.Fatalf("Get() = %d, want [0, %d)", p, n)
		}
	}
}

func TestGetConcurrent(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				if p := Get(); p < 0 || p >= n {
					t.Errorf("Get() = %d, want [0, %d)", p, n)
					return
				}
			}
		}()
	}
	wg.Wait()
}
