// Package procid exposes the identity of the P (GOMAXPROCS slot) the
// calling goroutine is running on, for shard-per-P placement: a producer
// that picks its shard by P index lands on the same shard for as long as
// the scheduler keeps it on the same P, giving mostly-private shard access
// with no per-producer handle plumbing. The id is advisory — the goroutine
// can migrate the instant the pin is released — so callers must still
// synchronize shard access; they just rarely contend.
package procid

import (
	_ "unsafe" // for go:linkname
)

//go:linkname procPin sync.runtime_procPin
func procPin() int

//go:linkname procUnpin sync.runtime_procUnpin
func procUnpin()

// Get returns the index of the P the caller is momentarily running on, in
// [0, GOMAXPROCS). The value is a placement hint, not a lock: by the time
// Get returns, the goroutine may already be elsewhere.
func Get() int {
	p := procPin()
	procUnpin()
	return p
}
