// Empty assembly file so the go:linkname pulls in sync's runtime hooks:
// a package with .s files may use linkname without -checklinkname tricks.
