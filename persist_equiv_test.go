package hotprefetch

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"hotprefetch/internal/machine"
	"hotprefetch/internal/memsim"
	"hotprefetch/internal/workload"
)

// Restore-vs-rebuild equivalence: a profile restored from a snapshot must be
// indistinguishable from the profile that wrote it — bit-identical
// BankedStreams, and the same prefetching outcome when its warm-started
// matcher drives the memory simulator over the same trace. Proven across
// the full workload catalog, not a synthetic trace.

// equivCollector captures the first `budget` raw data references of a
// workload run as root-package Refs.
type equivCollector struct {
	refs   []Ref
	budget int
	m      *machine.Machine
}

func (c *equivCollector) Check(pc int) (machine.Version, uint64) {
	return machine.VersionInstrumented, 0
}

func (c *equivCollector) TraceRef(pc int, addr machine.Word, isWrite bool) uint64 {
	c.refs = append(c.refs, Ref{PC: pc, Addr: uint64(addr)})
	c.budget--
	if c.budget <= 0 {
		c.m.Yield()
	}
	return 0
}

func (c *equivCollector) Match(pc int, addr machine.Word) ([]machine.Word, uint64) {
	return nil, 0
}

// captureWorkloadTrace runs the benchmark and returns its first n data
// references.
func captureWorkloadTrace(t *testing.T, p workload.Params, n int) []Ref {
	t.Helper()
	inst := workload.Build(p)
	m := inst.NewMachine(workload.CacheConfig(), true)
	col := &equivCollector{refs: make([]Ref, 0, n), budget: n, m: m}
	m.RT = col
	m.Start()
	for col.budget > 0 {
		st, err := m.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if st == machine.Halted {
			break
		}
	}
	return col.refs
}

// equivProfileConfig is the profile both sides of the comparison use: a
// grammar budget small enough that a 40k-reference trace banks several
// cycles.
func equivProfileConfig() ShardedConfig {
	return ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 512,
		CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.01},
	}
}

// prefetchSim replays the trace against the cache hierarchy with the
// matcher's prefetches applied, as the instrumented program would.
func prefetchSim(trace []Ref, cm *ConcurrentMatcher) memsim.Stats {
	h := memsim.New(workload.CacheConfig())
	var now uint64
	for _, r := range trace {
		now++
		h.Access(now, r.PC, r.Addr, false)
		pf, _ := cm.Observe(r)
		for _, a := range pf {
			h.Prefetch(now, a)
		}
	}
	return h.Stats()
}

func TestSnapshotRestoreRebuildEquivalence(t *testing.T) {
	const traceRefs = 40000
	anyStreams := false
	for _, p := range workload.Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			trace := captureWorkloadTrace(t, p, traceRefs)
			cold, err := NewShardedProfileConfig(equivProfileConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer cold.Close()
			if err := cold.Shard(0).AddAll(trace); err != nil {
				t.Fatal(err)
			}
			if err := cold.Flush(); err != nil {
				t.Fatal(err)
			}
			want := cold.BankedStreams(0)

			var buf bytes.Buffer
			if err := cold.WriteSnapshot(&buf, 1); err != nil {
				t.Fatal(err)
			}
			warm, err := NewShardedProfileConfig(equivProfileConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer warm.Close()
			if _, err := warm.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			got := warm.BankedStreams(0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("restored BankedStreams diverged from rebuild:\n got %d streams\nwant %d streams", len(got), len(want))
			}
			if len(want) == 0 {
				t.Logf("%s banked no streams at this budget; stream equivalence is vacuous", p.Name)
				return
			}
			anyStreams = true

			// Same trace, two matchers: one compiled from the rebuilt bank,
			// one installed by a warm-started supervisor over the restored
			// profile. The prefetching outcome must agree.
			cmCold, err := NewConcurrentMatcher(want, 2)
			if err != nil {
				t.Fatal(err)
			}
			cmWarm, err := NewConcurrentMatcher(nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			sup, err := Supervise(warm, cmWarm, SupervisorConfig{
				AccuracyFloor:         0.5,
				MinWindowObservations: 1 << 40, // no window judgments mid-replay
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sup.Close()
			if sup.State() != StateOptimized {
				t.Fatalf("warm supervisor state = %v, want %v", sup.State(), StateOptimized)
			}

			sc := prefetchSim(trace, cmCold)
			sw := prefetchSim(trace, cmWarm)
			if sc.UsefulPrefetches == 0 {
				t.Logf("%s: no useful prefetches at this budget (%d issued)", p.Name, sc.Prefetches)
			}
			tolAbs := func(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
			if !tolAbs(float64(sw.UsefulPrefetches), float64(sc.UsefulPrefetches), 0.02*float64(sc.UsefulPrefetches)+1) {
				t.Fatalf("useful prefetches diverged: warm %d vs rebuild %d", sw.UsefulPrefetches, sc.UsefulPrefetches)
			}
			if !tolAbs(sw.MissRatio(), sc.MissRatio(), 0.02) {
				t.Fatalf("miss ratio diverged: warm %.4f vs rebuild %.4f", sw.MissRatio(), sc.MissRatio())
			}
			t.Logf("%s: %d streams, useful prefetches warm=%d rebuild=%d, miss ratio warm=%.4f rebuild=%.4f",
				p.Name, len(want), sw.UsefulPrefetches, sc.UsefulPrefetches, sw.MissRatio(), sc.MissRatio())
		})
	}
	if !anyStreams {
		t.Error("no catalog workload banked streams; the equivalence suite proved nothing")
	}
}

// TestWarmStartTimeToFirstOptimization measures the satellite claim behind
// EXPERIMENTS.md's cold-vs-warm table: a cold supervisor needs a full
// profiling period (references fed until a cycle banks) before its first
// optimization, while a warm-started one is Optimized at zero references.
func TestWarmStartTimeToFirstOptimization(t *testing.T) {
	cfg := SupervisorConfig{AccuracyFloor: 0.5, MinWindowObservations: 64}

	cold, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	cmCold, err := NewConcurrentMatcher(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	supCold, err := Supervise(cold, cmCold, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer supCold.Close()
	if supCold.State() != StateProfiling {
		t.Fatalf("cold supervisor starts %v, want %v", supCold.State(), StateProfiling)
	}
	trace := phaseTrace(1, 40)
	coldRefs := 0
	for i := 0; i < 200 && supCold.State() != StateOptimized; i++ {
		if err := cold.Shard(0).AddAll(trace); err != nil {
			t.Fatal(err)
		}
		if err := cold.Flush(); err != nil {
			t.Fatal(err)
		}
		coldRefs += len(trace)
		if err := supCold.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if supCold.State() != StateOptimized {
		t.Fatal("cold supervisor never optimized")
	}
	if coldRefs == 0 {
		t.Fatal("cold supervisor optimized without profiling a single reference")
	}

	warm, _, supWarm := warmStart(t, cold, cfg)
	defer warm.Close()
	defer supWarm.Close()
	warmRefs := 0 // Optimized before any live reference
	if supWarm.State() != StateOptimized {
		t.Fatalf("warm supervisor state = %v at %d refs, want %v", supWarm.State(), warmRefs, StateOptimized)
	}
	t.Logf("time to first optimization: cold=%d refs, warm=%d refs", coldRefs, warmRefs)
}
