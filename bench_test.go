package hotprefetch

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (§4). Each run regenerates the corresponding artifact
// and reports its headline numbers as custom metrics:
//
//	go test -bench=Figure11 -benchmem .   # paper Figure 11
//	go test -bench=Figure12 -benchmem .   # paper Figure 12
//	go test -bench=Table2   -benchmem .   # paper Table 2
//	go test -bench=Ablation -benchmem .   # §4.3 head length + fast-vs-precise
//	go test -bench=Extension -benchmem .  # §5.1 hardware prefetcher comparison
//
// Metrics are percentages relative to the unoptimized baseline ("pct",
// negative = speedup) or counts. The cmd/figures tool prints the same data
// as formatted tables.

import (
	"math/rand"
	"testing"

	"hotprefetch/internal/experiment"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/opt"
	"hotprefetch/internal/sequitur"
	"hotprefetch/internal/workload"
)

// BenchmarkFigure11 regenerates the overhead of online profiling and
// analysis: the Base, Prof, and Hds bars per benchmark.
func BenchmarkFigure11(b *testing.B) {
	for _, p := range workload.Catalog() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := experiment.RunBenchmark(p, experiment.Figure11Modes)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.Overhead(opt.ModeBase), "base-pct")
				b.ReportMetric(run.Overhead(opt.ModeProfile), "prof-pct")
				b.ReportMetric(run.Overhead(opt.ModeHds), "hds-pct")
			}
		})
	}
}

// BenchmarkFigure12 regenerates the performance impact of dynamic
// prefetching: the No-pref, Seq-pref, and Dyn-pref bars per benchmark.
func BenchmarkFigure12(b *testing.B) {
	for _, p := range workload.Catalog() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := experiment.RunBenchmark(p, experiment.Figure12Modes)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.Overhead(opt.ModeNoPref), "nopref-pct")
				b.ReportMetric(run.Overhead(opt.ModeSeqPref), "seqpref-pct")
				b.ReportMetric(run.Overhead(opt.ModeDynPref), "dynpref-pct")
			}
		})
	}
}

// BenchmarkTable2 regenerates the detailed dynamic prefetching
// characterization: optimization cycles, traced references, hot streams,
// DFSM size, and procedures modified, per benchmark.
func BenchmarkTable2(b *testing.B) {
	for _, p := range workload.Catalog() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := experiment.RunBenchmark(p, []opt.Mode{opt.ModeDynPref})
				if err != nil {
					b.Fatal(err)
				}
				res := run.Results[opt.ModeDynPref]
				avg := res.AvgPerCycle()
				b.ReportMetric(float64(res.OptCycles()), "opt-cycles")
				b.ReportMetric(float64(avg.TracedRefs), "traced-refs")
				b.ReportMetric(float64(avg.HotStreams), "hot-streams")
				b.ReportMetric(float64(avg.DFSMStates), "dfsm-states")
				b.ReportMetric(float64(avg.ChecksInserted), "checks")
				b.ReportMetric(float64(avg.ProcsModified), "procs-modified")
			}
		})
	}
}

// BenchmarkAblationHeadLen regenerates the §4.3 prefix length study on vpr:
// headLen=2 wins; 1 is cheap but inaccurate, 3 costs more for no gain.
func BenchmarkAblationHeadLen(b *testing.B) {
	for _, hl := range []int{1, 2, 3} {
		hl := hl
		b.Run(map[int]string{1: "headlen1", 2: "headlen2", 3: "headlen3"}[hl], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiment.AblationHeadLen(workload.Vpr(), []int{hl})
				if err != nil {
					b.Fatal(err)
				}
				r := results[0]
				b.ReportMetric(r.Overhead, "overhead-pct")
				b.ReportMetric(float64(r.Result.Cache.UsefulPrefetches), "useful-prefetches")
				b.ReportMetric(float64(r.Result.Machine.Matches), "checks-executed")
			}
		})
	}
}

// BenchmarkAblationAnalysis compares the paper's fast (Figure 5) hot data
// stream detection against the precise Larus-style detector on identical
// sampled traces — the §2.3 "faster, less precise" trade-off.
func BenchmarkAblationAnalysis(b *testing.B) {
	trace := ablationTrace(100000)
	cfg := hotds.DefaultConfig()

	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := sequitur.New()
			g.AppendAll(trace)
			streams := hotds.Analyze(g.Snapshot(), cfg)
			b.ReportMetric(float64(len(streams)), "streams")
		}
	})
	b.Run("precise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			streams := hotds.PreciseAnalyze(trace, cfg)
			b.ReportMetric(float64(len(streams)), "streams")
		}
	})
}

// BenchmarkExtensionHardware compares the software scheme against the §5.1
// hardware prefetchers (stride and Markov correlation) on each benchmark.
func BenchmarkExtensionHardware(b *testing.B) {
	for _, p := range workload.Catalog() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiment.HardwareComparison([]workload.Params{p})
				if err != nil {
					b.Fatal(err)
				}
				r := results[0]
				b.ReportMetric(r.StrideOverhead, "stride-pct")
				b.ReportMetric(r.NextLineOverhead, "nextline-pct")
				b.ReportMetric(r.MarkovOverhead, "markov-pct")
				b.ReportMetric(r.DynOverhead, "dynpref-pct")
			}
		})
	}
}

// ablationTrace builds a stream-rich sampled trace like the profiler's.
func ablationTrace(n int) []uint64 {
	r := rand.New(rand.NewSource(11))
	var streams [][]uint64
	for s := 0; s < 20; s++ {
		st := make([]uint64, 12+r.Intn(12))
		for i := range st {
			st[i] = uint64(s*1000 + i)
		}
		streams = append(streams, st)
	}
	trace := make([]uint64, 0, n)
	for len(trace) < n {
		if r.Intn(8) == 0 {
			trace = append(trace, uint64(100000+r.Intn(5000)))
		} else {
			trace = append(trace, streams[r.Intn(len(streams))]...)
		}
	}
	return trace[:n]
}

// BenchmarkExtensionStaticVsDynamic compares one-shot static prefetching
// against the adaptive dynamic cycle (the comparison deferred to future work
// in §1): dynamic wins on phased programs, static on stable ones.
func BenchmarkExtensionStaticVsDynamic(b *testing.B) {
	for _, p := range []workload.Params{workload.Vpr(), workload.Mcf()} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiment.StaticVsDynamic([]workload.Params{p})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(results[0].Static, "static-pct")
				b.ReportMetric(results[0].Dynamic, "dynamic-pct")
			}
		})
	}
}

// BenchmarkAblationScheduling evaluates prefetch scheduling (§4.3 future
// work) under a bounded outstanding-fill budget on mcf.
func BenchmarkAblationScheduling(b *testing.B) {
	for _, chunk := range []int{0, 4} {
		chunk := chunk
		name := map[int]string{0: "all-at-match", 4: "chunk4"}[chunk]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiment.AblationScheduling(workload.Mcf(), []int{chunk})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(results[0].Overhead, "overhead-pct")
				b.ReportMetric(float64(results[0].Dropped), "dropped")
			}
		})
	}
}

// BenchmarkExtensionHybrid measures the stride-complement hybrid (§4.3).
func BenchmarkExtensionHybrid(b *testing.B) {
	for _, p := range []workload.Params{workload.Mcf(), workload.Vpr()} {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiment.HybridComparison([]workload.Params{p})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(results[0].Dyn, "dyn-pct")
				b.ReportMetric(results[0].Hybrid, "hybrid-pct")
			}
		})
	}
}
