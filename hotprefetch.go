// Package hotprefetch is a reproduction of Chilimbi & Hirzel, "Dynamic Hot
// Data Stream Prefetching for General-Purpose Programs" (PLDI 2002), as a
// reusable Go library.
//
// The package exposes the paper's pipeline in two forms:
//
//   - Standalone algorithm components that work on any data reference
//     trace: an online temporal profile builder (Sequitur compression +
//     fast hot data stream extraction, paper §2) and a prefix-matching
//     engine that tracks all hot streams with one DFSM and reports the
//     addresses to prefetch (paper §3).
//
//   - A complete execution-substrate simulation — virtual ISA, two-level
//     cache hierarchy, bursty tracing, dynamic code injection — that
//     reproduces the paper's evaluation end to end (paper §4). See
//     RunBenchmark and the cmd/ tools.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results.
package hotprefetch

import (
	"fmt"
	"runtime"
	"sync"

	"hotprefetch/internal/dfsm"
	"hotprefetch/internal/hotds"
	"hotprefetch/internal/ref"
	"hotprefetch/internal/sequitur"
)

// Ref is a single data reference: the program counter of a load or store
// and the address it touched (paper §2.1).
type Ref struct {
	PC   int
	Addr uint64
}

// Stream is a hot data stream: a reference sequence that frequently repeats
// in the same order, with its regularity magnitude Heat = length ×
// frequency (paper §2.3).
type Stream struct {
	Refs []Ref
	Heat uint64
}

// Coverage returns the fraction of a trace of traceLen references this
// stream accounts for.
func (s Stream) Coverage(traceLen uint64) float64 {
	if traceLen == 0 {
		return 0
	}
	return float64(s.Heat) / float64(traceLen)
}

// AnalysisConfig controls hot data stream detection.
type AnalysisConfig struct {
	// MinLen and MaxLen bound stream length in references.
	MinLen, MaxLen int
	// MinUnique is the minimum number of distinct references per stream
	// (the paper requires more than ten, §1). Zero disables the filter.
	MinUnique int
	// MinCoverage is the fraction of the profiled trace a stream must
	// account for (the paper uses 1%, §4.1). Ignored if Heat is set.
	MinCoverage float64
	// Heat is an explicit heat threshold overriding MinCoverage.
	Heat uint64
	// MaxStreams caps the result to the hottest streams (0 = no cap).
	MaxStreams int
}

// DefaultAnalysisConfig returns the paper's §4.1 settings: streams of more
// than ten unique references covering at least 1% of the trace, at most 100
// streams.
func DefaultAnalysisConfig() AnalysisConfig {
	c := hotds.DefaultConfig()
	return AnalysisConfig{
		MinLen:      int(c.MinLen),
		MaxLen:      int(c.MaxLen),
		MinUnique:   c.MinUnique,
		MinCoverage: c.MinCoverage,
		MaxStreams:  c.MaxStreams,
	}
}

// Validate reports whether the configuration is well-formed: no negative
// bounds or caps, MinLen <= MaxLen when both are set, and MinCoverage within
// [0, 1]. The analysis entry points clamp rather than fail (see internal),
// so Validate is the error path for callers that accept configurations from
// the outside — services, tools, RPC layers.
func (c AnalysisConfig) Validate() error {
	if c.MinLen < 0 || c.MaxLen < 0 {
		return fmt.Errorf("hotprefetch: negative stream length bound (MinLen=%d, MaxLen=%d)", c.MinLen, c.MaxLen)
	}
	if c.MaxLen > 0 && c.MinLen > c.MaxLen {
		return fmt.Errorf("hotprefetch: MinLen %d exceeds MaxLen %d", c.MinLen, c.MaxLen)
	}
	if c.MinUnique < 0 {
		return fmt.Errorf("hotprefetch: negative MinUnique %d", c.MinUnique)
	}
	if c.MinCoverage < 0 || c.MinCoverage > 1 {
		return fmt.Errorf("hotprefetch: MinCoverage %g outside [0, 1]", c.MinCoverage)
	}
	if c.MaxStreams < 0 {
		return fmt.Errorf("hotprefetch: negative MaxStreams %d", c.MaxStreams)
	}
	return nil
}

// internal converts to the analysis package's configuration, clamping values
// a plain uint64 conversion would corrupt: a negative MinLen or MaxLen would
// wrap to a huge unsigned bound and silently invert the filter's meaning.
func (c AnalysisConfig) internal() hotds.Config {
	minLen, maxLen := c.MinLen, c.MaxLen
	if minLen < 0 {
		minLen = 0
	}
	if maxLen < 0 {
		maxLen = 0
	}
	minUnique, maxStreams := c.MinUnique, c.MaxStreams
	if minUnique < 0 {
		minUnique = 0
	}
	if maxStreams < 0 {
		maxStreams = 0
	}
	minCoverage := c.MinCoverage
	if minCoverage < 0 {
		minCoverage = 0
	}
	return hotds.Config{
		MinLen:      uint64(minLen),
		MaxLen:      uint64(maxLen),
		MinUnique:   minUnique,
		MinCoverage: minCoverage,
		Heat:        c.Heat,
		MaxStreams:  maxStreams,
	}
}

// Profile is an online temporal data reference profile: references are
// appended one at a time and compressed incrementally into a Sequitur
// grammar (paper §2.3). Appending is amortized O(1); extraction of hot data
// streams is linear in the grammar size. Profile is not safe for concurrent
// use.
type Profile struct {
	grammar  *sequitur.Grammar
	interner *ref.Interner

	// prepass, when non-nil, is the two-level ingest front end AddBatch
	// routes through: immediate repeats collapse into doubling rules and
	// recently minted phrases replay as single rule symbols, so only
	// residual novel symbols reach the digram table. Grammars are then
	// equivalent to the lossless path after expansion, not bit-identical.
	prepass *sequitur.Prepass

	// symbuf is AddBatch's reusable interned-symbol scratch, so feeding a
	// burst through AppendRun stays allocation-free in steady state.
	symbuf []uint64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		grammar:  sequitur.New(),
		interner: ref.NewInterner(),
	}
}

// internal maps the public front-end knobs onto the sequitur package's
// configuration (defaults are substituted there).
func (c PrepassConfig) internal() sequitur.PrepassConfig {
	return sequitur.PrepassConfig{Window: c.Window, MinRun: c.MinRun, CacheSize: c.CacheSize}
}

// NewPrepassProfile returns an empty profile whose AddBatch path runs the
// two-level ingest front end (run collapsing + phrase-rule replay) ahead of
// grammar compression. cfg.Mode is ignored — constructing the profile is the
// decision. Snapshot expansion, and therefore every extracted hot stream, is
// identical to a profile built without the front end; the grammars themselves
// are not bit-identical.
func NewPrepassProfile(cfg PrepassConfig) *Profile {
	p := NewProfile()
	p.prepass = sequitur.NewPrepass(p.grammar, cfg.internal())
	return p
}

// Add appends one data reference to the profile.
func (p *Profile) Add(r Ref) {
	sym := p.interner.Intern(ref.Ref{PC: r.PC, Addr: r.Addr})
	p.grammar.Append(uint64(sym))
}

// AddBatch appends a burst of references in order — the batch entry point
// mirroring how bursty tracing delivers references in bursts rather than
// singletons (§2.2). The burst is interned in one pass and compressed with
// one batch-aware grammar run (sequitur.AppendRun), which amortizes
// digram-table epochs and hashing across the burst; the resulting profile is
// identical to per-reference Add calls.
func (p *Profile) AddBatch(refs []Ref) {
	if len(refs) == 0 {
		return
	}
	if cap(p.symbuf) < len(refs) {
		p.symbuf = make([]uint64, len(refs))
	}
	buf := p.symbuf[:len(refs)]
	for i, r := range refs {
		buf[i] = uint64(p.interner.Intern(ref.Ref{PC: r.PC, Addr: r.Addr}))
	}
	if p.prepass != nil {
		p.prepass.Append(buf)
		return
	}
	p.grammar.AppendRun(buf)
}

// Collapsed returns the number of references the ingest front end absorbed
// without a digram-table epoch (zero for profiles built with NewProfile).
func (p *Profile) Collapsed() uint64 {
	if p.prepass == nil {
		return 0
	}
	return p.prepass.Collapsed()
}

// MintedRules returns the number of phrase and run rules the ingest front
// end has minted directly (zero for profiles built with NewProfile).
func (p *Profile) MintedRules() uint64 {
	if p.prepass == nil {
		return 0
	}
	return p.prepass.Minted()
}

// AddAll appends each reference in order.
func (p *Profile) AddAll(refs []Ref) { p.AddBatch(refs) }

// Len returns the number of references added so far.
func (p *Profile) Len() uint64 { return p.grammar.Len() }

// Reset discards the profile's grammar and interner contents while retaining
// their allocated capacity — the paper's end-of-cycle grammar deallocation
// (§5), which bounds the memory of a long-running profiling loop. Extract
// hot streams first; they remain valid after the reset because streams carry
// concrete references, not interned symbols.
func (p *Profile) Reset() {
	p.grammar.Reset()
	p.interner.Reset()
	if p.prepass != nil {
		// Cached rule indices die with the grammar; the front end must
		// forget them before the next cycle reuses the arena slots.
		p.prepass.Reset()
	}
}

// GrammarSize returns the size of the underlying Sequitur grammar — the
// quantity hot data stream analysis is linear in.
func (p *Profile) GrammarSize() int { return p.grammar.Size() }

// Snapshot is a point-in-time view of a profile's grammar for analysis.
// An optimize pass that wants both the fast and the precise detector on the
// same profile takes one Snapshot and runs both detectors on it, instead of
// re-walking the grammar per detector as the profile-level entry points do.
//
// A snapshot stays valid while the profile grows, but not across
// Profile.Reset: streams are resolved through the profile's interner, which
// Reset recycles.
type Snapshot struct {
	p    *Profile
	snap *sequitur.Snapshot
}

// Snapshot captures the profile's grammar once for repeated analysis.
func (p *Profile) Snapshot() *Snapshot {
	return &Snapshot{p: p, snap: p.grammar.Snapshot()}
}

// Len returns the number of references the snapshot covers.
func (s *Snapshot) Len() uint64 { return s.snap.InputLen }

// HotStreams extracts the snapshot's hot data streams using the paper's fast
// approximation algorithm (Figure 5), hottest first.
func (s *Snapshot) HotStreams(cfg AnalysisConfig) []Stream {
	infos := hotds.Analyze(s.snap, cfg.internal())
	return s.p.toStreams(infos)
}

// HotStreamsPrecise extracts hot data streams with the exact (Larus-style)
// detector over the reconstructed trace. It is slower than HotStreams but
// also finds streams that straddle the grammar's rule boundaries (§2.3).
func (s *Snapshot) HotStreamsPrecise(cfg AnalysisConfig) []Stream {
	trace := s.snap.Expand(0)
	infos := hotds.PreciseAnalyze(trace, cfg.internal())
	return s.p.toStreams(infos)
}

// HotStreams extracts the profile's hot data streams using the paper's fast
// approximation algorithm (Figure 5), hottest first. The profile can
// continue to grow afterwards. To run more than one detector over the same
// moment, take a Snapshot and analyze that instead.
func (p *Profile) HotStreams(cfg AnalysisConfig) []Stream {
	return p.Snapshot().HotStreams(cfg)
}

// HotStreamsPrecise extracts hot data streams with the exact (Larus-style)
// detector; see Snapshot.HotStreamsPrecise.
func (p *Profile) HotStreamsPrecise(cfg AnalysisConfig) []Stream {
	return p.Snapshot().HotStreamsPrecise(cfg)
}

func (p *Profile) toStreams(infos []hotds.StreamInfo) []Stream {
	out := make([]Stream, len(infos))
	for i, info := range infos {
		refs := make([]Ref, len(info.Word))
		for j, sym := range info.Word {
			r := p.interner.Ref(ref.Symbol(sym))
			refs[j] = Ref{PC: r.PC, Addr: r.Addr}
		}
		out[i] = Stream{Refs: refs, Heat: info.Heat}
	}
	return out
}

// Matcher tracks the matching prefixes of a set of hot data streams with a
// single DFSM (paper §3.1, Figures 7-9). Feed it the data references
// observed at the streams' head pcs; when a stream's head completes, Observe
// returns the remaining stream addresses to prefetch.
type Matcher struct {
	d *dfsm.DFSM
	m *dfsm.Matcher
}

// NewMatcher builds the combined prefix-matching DFSM for the given streams.
// headLen is the prefix length that must match before prefetching is
// initiated; the paper finds 2 best (§4.3). Streams too short to have a
// prefetchable tail are ignored.
//
// Per-stream preparation (reference conversion and tail deduplication) is
// independent across streams, so large stream sets are prepared in parallel
// partitions; each worker writes disjoint slots, so the built machine is
// identical regardless of parallelism.
func NewMatcher(streams []Stream, headLen int) (*Matcher, error) {
	if headLen < 1 {
		return nil, fmt.Errorf("hotprefetch: headLen must be >= 1, got %d", headLen)
	}
	split := make([]dfsm.Stream, len(streams))
	prep := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := streams[i]
			refs := make([]ref.Ref, len(s.Refs))
			for j, r := range s.Refs {
				refs[j] = ref.Ref{PC: r.PC, Addr: r.Addr}
			}
			split[i] = dfsm.Split(refs, s.Heat, headLen)
		}
	}
	if workers := runtime.GOMAXPROCS(0); workers > 1 && len(streams) >= 32 {
		var wg sync.WaitGroup
		chunk := (len(streams) + workers - 1) / workers
		for lo := 0; lo < len(streams); lo += chunk {
			hi := lo + chunk
			if hi > len(streams) {
				hi = len(streams)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				prep(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		prep(0, len(streams))
	}
	d := dfsm.Build(split, headLen)
	return &Matcher{d: d, m: dfsm.NewMatcher(d)}, nil
}

// Observe consumes one data reference. It returns the addresses to prefetch
// (non-nil exactly when a stream's head just completed) and the number of
// comparisons the generated detection code would have executed — the
// matching overhead the paper charges against prefetching gains.
func (m *Matcher) Observe(r Ref) (prefetch []uint64, comparisons int) {
	return m.m.Step(ref.Ref{PC: r.PC, Addr: r.Addr})
}

// Reset returns the matcher to its start state (nothing matched).
func (m *Matcher) Reset() { m.m.Reset() }

// EnableAccuracyTracking turns on prefetch accuracy accounting: every
// address returned by Observe is counted as issued, and an issued address
// observed by a later Observe counts as a hit — the paper's Table 2
// accuracy metric (useful prefetches over prefetches issued), measured
// online. window bounds the outstanding-address set (<= 0 means 4096);
// addresses evicted by newer prefetches never count as hits. Disabled by
// default, leaving Observe's hot path untouched.
func (m *Matcher) EnableAccuracyTracking(window int) { m.m.EnableHitTracking(window) }

// AccuracyCounters returns the cumulative prefetch addresses issued and the
// subset subsequently observed. Both are zero until EnableAccuracyTracking.
func (m *Matcher) AccuracyCounters() (issued, hits uint64) { return m.m.HitCounters() }

// NumStates returns the number of DFSM states, including the start state.
// The paper observes close to headLen×n+1 states for n streams rather than
// the exponential worst case (§3.1).
func (m *Matcher) NumStates() int { return m.d.NumStates() }

// NumTransitions returns the number of explicit DFSM transitions.
func (m *Matcher) NumTransitions() int { return m.d.NumTransitions() }

// PCs returns the sorted instruction addresses at which detection code must
// be injected: every pc appearing in any stream's head.
func (m *Matcher) PCs() []int { return m.d.PCs() }
