package hotprefetch_test

// Concurrency tests for the predictor zoo: hot-swapping any registered
// implementation (and swapping between implementations) must be safe while
// observer goroutines hammer Observe, and the per-predictor accuracy
// ledgers must reconcile exactly with the matcher totals under that load.
// All run under -race in the concurrency CI job.

import (
	"strings"
	"sync"
	"testing"

	"hotprefetch"
	"hotprefetch/internal/predictortest"
)

// TestPredictorHotSwapRacesObserve mirrors TestMatcherHotSwapRacesObserve
// for each registered predictor: retrain between two stream sets while four
// goroutines observe. Under -race this validates that every implementation's
// publication path is torn-table free, not just the DFSM's.
func TestPredictorHotSwapRacesObserve(t *testing.T) {
	traceA, traceB := predictortest.Trace(1, 60), predictortest.Trace(2, 60)
	sets := [][]hotprefetch.Stream{
		predictortest.Streams(t, traceA),
		predictortest.Streams(t, traceB),
	}
	for _, name := range hotprefetch.PredictorNames() {
		if strings.HasPrefix(name, "test-") {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			cm, err := hotprefetch.NewConcurrentPredictor(name, sets[0], 2)
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						for _, r := range traceA[:60] {
							cm.Observe(r)
						}
						for _, r := range traceB[:60] {
							cm.Observe(r)
						}
					}
				}()
			}
			const swaps = 50
			for i := 1; i <= swaps; i++ {
				if err := cm.SwapNamed(name, sets[i%2], 2); err != nil {
					t.Error(err)
					break
				}
			}
			close(stop)
			wg.Wait()
			if got := cm.Swaps(); got != swaps {
				t.Errorf("Swaps = %d, want %d", got, swaps)
			}
			if got := cm.Predictor(); got != name {
				t.Errorf("published predictor = %q, want %q", got, name)
			}
			if cm.NumStates() < 2 {
				t.Errorf("NumStates = %d after trained swaps, want >= 2", cm.NumStates())
			}
		})
	}
}

// TestCrossPredictorSwapRacesObserve cycles the published implementation
// through the whole zoo while observers run: a swap can change not just the
// stream set but the predictor type, which is exactly what a Supervisor A/B
// arm switch does mid-traffic.
func TestCrossPredictorSwapRacesObserve(t *testing.T) {
	trace := predictortest.Trace(3, 60)
	streams := predictortest.Streams(t, trace)
	names := []string{"dfsm", "markov", "stride"}
	cm, err := hotprefetch.NewConcurrentPredictor(names[0], streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm.EnableAccuracyTracking(256)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, r := range trace[:90] {
					cm.Observe(r)
				}
			}
		}()
	}
	const swaps = 60
	for i := 1; i <= swaps; i++ {
		if err := cm.SwapNamed(names[i%len(names)], streams, 2); err != nil {
			t.Error(err)
			break
		}
		// Mid-storm ledger reads must stay monotonic and bounded: the
		// per-predictor sum lies between two surrounding total reads.
		if i%10 == 0 {
			loIssued, loHits := cm.AccuracyCounters()
			var sumIssued, sumHits uint64
			for _, pa := range cm.AccuracyByPredictor() {
				sumIssued += pa.Issued
				sumHits += pa.Hits
			}
			hiIssued, hiHits := cm.AccuracyCounters()
			if sumIssued < loIssued || sumIssued > hiIssued {
				t.Errorf("per-predictor issued sum %d outside [%d, %d]", sumIssued, loIssued, hiIssued)
			}
			if sumHits < loHits || sumHits > hiHits {
				t.Errorf("per-predictor hits sum %d outside [%d, %d]", sumHits, loHits, hiHits)
			}
		}
	}
	close(stop)
	wg.Wait()

	// At quiescence the ledgers reconcile exactly: per-predictor counters
	// sum to the totals, and every publication is attributed to a name.
	var sumIssued, sumHits, sumSwaps uint64
	byPred := cm.AccuracyByPredictor()
	for _, pa := range byPred {
		sumIssued += pa.Issued
		sumHits += pa.Hits
		sumSwaps += pa.Swaps
	}
	issued, hits := cm.AccuracyCounters()
	if sumIssued != issued || sumHits != hits {
		t.Fatalf("per-predictor ledgers (%d, %d) != totals (%d, %d)", sumIssued, sumHits, issued, hits)
	}
	// +1: the constructor's initial publication is in the books but is not
	// a Swap.
	if sumSwaps != swaps+1 {
		t.Fatalf("per-predictor swap count %d, want %d", sumSwaps, swaps+1)
	}
	if len(byPred) != len(names) {
		t.Fatalf("ledger names = %d, want %d: %+v", len(byPred), len(names), byPred)
	}
	if hits > issued {
		t.Fatalf("hits %d > issued %d", hits, issued)
	}
}

// TestStatsPredictorsReconcileUnderLoad attaches the matcher to a profile
// and reads Stats while observers and cross-implementation swaps run: the
// published Predictors split must always sum to within the surrounding
// matcher totals (no cross-contamination, no lost windows).
func TestStatsPredictorsReconcileUnderLoad(t *testing.T) {
	trace := predictortest.Trace(4, 60)
	streams := predictortest.Streams(t, trace)
	sp, err := hotprefetch.NewShardedProfileConfig(hotprefetch.ShardedConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	cm, err := hotprefetch.NewConcurrentPredictor("dfsm", streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm.EnableAccuracyTracking(256)
	sp.AttachMatcher(cm)

	names := []string{"dfsm", "markov", "stride"}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, r := range trace[:90] {
					cm.Observe(r)
				}
			}
		}()
	}
	for i := 1; i <= 30; i++ {
		if err := cm.SwapNamed(names[i%len(names)], streams, 2); err != nil {
			t.Fatal(err)
		}
		loIssued, _ := cm.AccuracyCounters()
		st := sp.Stats()
		hiIssued, _ := cm.AccuracyCounters()
		if st.MatcherPredictor == "" {
			t.Fatal("Stats.MatcherPredictor empty with a matcher attached")
		}
		var sumIssued uint64
		for _, pa := range st.Predictors {
			sumIssued += pa.Issued
		}
		if sumIssued < loIssued || sumIssued > hiIssued {
			t.Fatalf("Stats.Predictors issued sum %d outside [%d, %d]", sumIssued, loIssued, hiIssued)
		}
	}
	close(stop)
	wg.Wait()

	st := sp.Stats()
	issued, _ := cm.AccuracyCounters()
	var sumIssued uint64
	for _, pa := range st.Predictors {
		sumIssued += pa.Issued
	}
	if sumIssued != issued {
		t.Fatalf("quiescent Stats.Predictors issued sum %d != matcher total %d", sumIssued, issued)
	}
}
