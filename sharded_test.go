package hotprefetch

import (
	"reflect"
	"sync"
	"testing"
)

// shardTrace builds a trace dominated by a repeating hot stream, with the
// stream's identity offset per producer so shards see distinct streams.
func shardTrace(producer, reps int) []Ref {
	stream := make([]Ref, 12)
	for i := range stream {
		stream[i] = Ref{PC: 100*producer + i, Addr: uint64(0x1000*producer + 8*i)}
	}
	var trace []Ref
	for r := 0; r < reps; r++ {
		trace = append(trace, stream...)
		// A little per-repetition noise so the grammar is not one rule.
		trace = append(trace, Ref{PC: 9000 + producer, Addr: uint64(r)})
	}
	return trace
}

func TestShardedProfileConcurrentProducers(t *testing.T) {
	const shards = 4
	sp := NewShardedProfile(shards)
	defer sp.Close()

	var total uint64
	var wg sync.WaitGroup
	traces := make([][]Ref, shards)
	for i := 0; i < shards; i++ {
		traces[i] = shardTrace(i+1, 200)
		total += uint64(len(traces[i]))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp.Shard(i).AddAll(traces[i])
		}(i)
	}
	wg.Wait()

	if got := sp.Len(); got != total {
		t.Fatalf("Len = %d, want %d", got, total)
	}

	cfg := AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.1}
	streams := sp.HotStreams(cfg)
	if len(streams) < shards {
		t.Fatalf("got %d hot streams, want at least %d (one per shard)", len(streams), shards)
	}
	// Every shard's hot stream should surface: look for each producer's
	// distinctive leading reference.
	for i := 0; i < shards; i++ {
		want := Ref{PC: 100 * (i + 1), Addr: uint64(0x1000 * (i + 1))}
		found := false
		for _, s := range streams {
			for _, r := range s.Refs {
				if r == want {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("no hot stream contains shard %d's leading ref %v", i, want)
		}
	}
}

func TestShardedProfileSingleShardEquivalence(t *testing.T) {
	trace := shardTrace(1, 300)

	want := NewProfile()
	want.AddAll(trace)

	sp := NewShardedProfile(1)
	defer sp.Close()
	sp.Shard(0).AddAll(trace)
	sp.Flush()

	if got, w := sp.Len(), want.Len(); got != w {
		t.Fatalf("Len = %d, want %d", got, w)
	}
	cfg := AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.01, MaxStreams: 50}
	gotStreams := sp.HotStreams(cfg)
	wantStreams := want.HotStreams(cfg)
	if !reflect.DeepEqual(gotStreams, wantStreams) {
		t.Errorf("N=1 sharded HotStreams diverge from single Profile:\n got %v\nwant %v", gotStreams, wantStreams)
	}
}

func TestShardedProfileMergeOrdering(t *testing.T) {
	hot := func(pc int, heat uint64) Stream {
		return Stream{Refs: []Ref{{PC: pc, Addr: 1}, {PC: pc + 1, Addr: 2}}, Heat: heat}
	}
	perShard := [][]Stream{
		{hot(10, 50), hot(20, 10)},
		{hot(30, 70), hot(10, 50)}, // hot(10) duplicates shard 0's — heats sum to 100
	}
	merged := mergeStreams(perShard, 0)
	if len(merged) != 3 {
		t.Fatalf("merged %d streams, want 3 (duplicate collapsed)", len(merged))
	}
	wantHeat := []uint64{100, 70, 10}
	wantPC := []int{10, 30, 20}
	for i, s := range merged {
		if s.Heat != wantHeat[i] || s.Refs[0].PC != wantPC[i] {
			t.Errorf("merged[%d] = pc %d heat %d, want pc %d heat %d",
				i, s.Refs[0].PC, s.Heat, wantPC[i], wantHeat[i])
		}
	}

	capped := mergeStreams(perShard, 2)
	if len(capped) != 2 || capped[0].Heat != 100 || capped[1].Heat != 70 {
		t.Errorf("cap 2 kept %v, want the two hottest (100, 70)", capped)
	}
}

func TestShardedProfileCloseDrains(t *testing.T) {
	sp := NewShardedProfile(2)
	trace := shardTrace(1, 100)
	sp.Shard(0).AddAll(trace)
	sp.Shard(1).AddAll(trace)
	sp.Close()
	sp.Close() // idempotent
	if got, want := sp.Len(), uint64(2*len(trace)); got != want {
		t.Fatalf("Len after Close = %d, want %d", got, want)
	}
}

func TestConcurrentMatcherRace(t *testing.T) {
	p := NewProfile()
	trace := shardTrace(1, 300)
	p.AddAll(trace)
	streams := p.HotStreams(AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.1})
	if len(streams) == 0 {
		t.Fatal("no hot streams to match")
	}
	cm, err := NewConcurrentMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var prefetched [4]int
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for _, r := range trace[:120] {
					if pf, _ := cm.Observe(r); len(pf) > 0 {
						prefetched[g]++
					}
				}
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for _, n := range prefetched {
		total += n
	}
	if total == 0 {
		t.Error("interleaved observation never completed a stream head")
	}
	cm.Reset()
	if cm.NumStates() < 2 {
		t.Errorf("NumStates = %d, want >= 2", cm.NumStates())
	}
}

// TestConcurrentMatcherMatchesSequential checks the wrapper is a plain
// pass-through when used from one goroutine.
func TestConcurrentMatcherMatchesSequential(t *testing.T) {
	p := NewProfile()
	trace := shardTrace(2, 300)
	p.AddAll(trace)
	streams := p.HotStreams(AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.1})
	if len(streams) == 0 {
		t.Fatal("no hot streams to match")
	}

	m, err := NewMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewConcurrentMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range trace {
		pf1, c1 := m.Observe(r)
		pf2, c2 := cm.Observe(r)
		if c1 != c2 || !reflect.DeepEqual(pf1, pf2) {
			t.Fatalf("ref %d: sequential (%v, %d) != concurrent (%v, %d)", i, pf1, c1, pf2, c2)
		}
	}
}

// TestMatcherHotSwapRacesObserve retrains a ConcurrentMatcher between two
// stream sets while observer goroutines hammer Observe — run under -race
// this validates the atomic-pointer publication: an observation lands wholly
// on the machine published before or after its swap, never on a torn table.
func TestMatcherHotSwapRacesObserve(t *testing.T) {
	cfg := AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.1}
	traceA, traceB := shardTrace(1, 300), shardTrace(2, 300)
	analyze := func(trace []Ref) []Stream {
		p := NewProfile()
		p.AddAll(trace)
		streams := p.HotStreams(cfg)
		if len(streams) == 0 {
			t.Fatal("no hot streams to match")
		}
		return streams
	}
	sets := [][]Stream{analyze(traceA), analyze(traceB)}

	cm, err := NewConcurrentMatcher(sets[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, r := range traceA[:60] {
					cm.Observe(r)
				}
				for _, r := range traceB[:60] {
					cm.Observe(r)
				}
			}
		}()
	}
	const swaps = 50
	for i := 1; i <= swaps; i++ {
		if err := cm.Swap(sets[i%2], 2); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if got := cm.Swaps(); got != swaps {
		t.Errorf("Swaps = %d, want %d", got, swaps)
	}
	if cm.NumStates() < 2 {
		t.Errorf("NumStates = %d, want >= 2", cm.NumStates())
	}
}

// TestMergeStreamsKWayFastPath drives mergeStreams through the sorted,
// duplicate-free fast path and checks it reproduces exactly the stable-sort
// order, including equal-heat tie-breaking by list then position.
func TestMergeStreamsKWayFastPath(t *testing.T) {
	st := func(pc int, heat uint64) Stream {
		return Stream{Refs: []Ref{{PC: pc, Addr: 1}}, Heat: heat}
	}
	perShard := [][]Stream{
		{st(10, 90), st(11, 50), st(12, 50), st(13, 10)},
		{st(20, 70), st(21, 50), st(22, 20)},
		{},
		{st(30, 90), st(31, 5)},
	}
	got := mergeStreams(perShard, 0)
	wantPC := []int{10, 30, 20, 11, 12, 21, 22, 13, 31}
	if len(got) != len(wantPC) {
		t.Fatalf("merged %d streams, want %d", len(got), len(wantPC))
	}
	for i, s := range got {
		if s.Refs[0].PC != wantPC[i] {
			t.Errorf("merged[%d].PC = %d, want %d", i, s.Refs[0].PC, wantPC[i])
		}
	}
	capped := mergeStreams(perShard, 3)
	if len(capped) != 3 || capped[0].Refs[0].PC != 10 || capped[1].Refs[0].PC != 30 || capped[2].Refs[0].PC != 20 {
		t.Errorf("cap 3 kept %v, want PCs 10, 30, 20", capped)
	}
}
