package hotprefetch

import (
	"reflect"
	"sync"
	"testing"
)

// shardTrace builds a trace dominated by a repeating hot stream, with the
// stream's identity offset per producer so shards see distinct streams.
func shardTrace(producer, reps int) []Ref {
	stream := make([]Ref, 12)
	for i := range stream {
		stream[i] = Ref{PC: 100*producer + i, Addr: uint64(0x1000*producer + 8*i)}
	}
	var trace []Ref
	for r := 0; r < reps; r++ {
		trace = append(trace, stream...)
		// A little per-repetition noise so the grammar is not one rule.
		trace = append(trace, Ref{PC: 9000 + producer, Addr: uint64(r)})
	}
	return trace
}

func TestShardedProfileConcurrentProducers(t *testing.T) {
	const shards = 4
	sp := NewShardedProfile(shards)
	defer sp.Close()

	var total uint64
	var wg sync.WaitGroup
	traces := make([][]Ref, shards)
	for i := 0; i < shards; i++ {
		traces[i] = shardTrace(i+1, 200)
		total += uint64(len(traces[i]))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp.Shard(i).AddAll(traces[i])
		}(i)
	}
	wg.Wait()

	if got := sp.Len(); got != total {
		t.Fatalf("Len = %d, want %d", got, total)
	}

	cfg := AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.1}
	streams := sp.HotStreams(cfg)
	if len(streams) < shards {
		t.Fatalf("got %d hot streams, want at least %d (one per shard)", len(streams), shards)
	}
	// Every shard's hot stream should surface: look for each producer's
	// distinctive leading reference.
	for i := 0; i < shards; i++ {
		want := Ref{PC: 100 * (i + 1), Addr: uint64(0x1000 * (i + 1))}
		found := false
		for _, s := range streams {
			for _, r := range s.Refs {
				if r == want {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("no hot stream contains shard %d's leading ref %v", i, want)
		}
	}
}

func TestShardedProfileSingleShardEquivalence(t *testing.T) {
	trace := shardTrace(1, 300)

	want := NewProfile()
	want.AddAll(trace)

	sp := NewShardedProfile(1)
	defer sp.Close()
	sp.Shard(0).AddAll(trace)
	sp.Flush()

	if got, w := sp.Len(), want.Len(); got != w {
		t.Fatalf("Len = %d, want %d", got, w)
	}
	cfg := AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.01, MaxStreams: 50}
	gotStreams := sp.HotStreams(cfg)
	wantStreams := want.HotStreams(cfg)
	if !reflect.DeepEqual(gotStreams, wantStreams) {
		t.Errorf("N=1 sharded HotStreams diverge from single Profile:\n got %v\nwant %v", gotStreams, wantStreams)
	}
}

func TestShardedProfileMergeOrdering(t *testing.T) {
	hot := func(pc int, heat uint64) Stream {
		return Stream{Refs: []Ref{{PC: pc, Addr: 1}, {PC: pc + 1, Addr: 2}}, Heat: heat}
	}
	perShard := [][]Stream{
		{hot(10, 50), hot(20, 10)},
		{hot(30, 70), hot(10, 50)}, // hot(10) duplicates shard 0's — heats sum to 100
	}
	merged := mergeStreams(perShard, 0)
	if len(merged) != 3 {
		t.Fatalf("merged %d streams, want 3 (duplicate collapsed)", len(merged))
	}
	wantHeat := []uint64{100, 70, 10}
	wantPC := []int{10, 30, 20}
	for i, s := range merged {
		if s.Heat != wantHeat[i] || s.Refs[0].PC != wantPC[i] {
			t.Errorf("merged[%d] = pc %d heat %d, want pc %d heat %d",
				i, s.Refs[0].PC, s.Heat, wantPC[i], wantHeat[i])
		}
	}

	capped := mergeStreams(perShard, 2)
	if len(capped) != 2 || capped[0].Heat != 100 || capped[1].Heat != 70 {
		t.Errorf("cap 2 kept %v, want the two hottest (100, 70)", capped)
	}
}

func TestShardedProfileCloseDrains(t *testing.T) {
	sp := NewShardedProfile(2)
	trace := shardTrace(1, 100)
	sp.Shard(0).AddAll(trace)
	sp.Shard(1).AddAll(trace)
	sp.Close()
	sp.Close() // idempotent
	if got, want := sp.Len(), uint64(2*len(trace)); got != want {
		t.Fatalf("Len after Close = %d, want %d", got, want)
	}
}

func TestConcurrentMatcherRace(t *testing.T) {
	p := NewProfile()
	trace := shardTrace(1, 300)
	p.AddAll(trace)
	streams := p.HotStreams(AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.1})
	if len(streams) == 0 {
		t.Fatal("no hot streams to match")
	}
	cm, err := NewConcurrentMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var prefetched [4]int
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for _, r := range trace[:120] {
					if pf, _ := cm.Observe(r); len(pf) > 0 {
						prefetched[g]++
					}
				}
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for _, n := range prefetched {
		total += n
	}
	if total == 0 {
		t.Error("interleaved observation never completed a stream head")
	}
	cm.Reset()
	if cm.NumStates() < 2 {
		t.Errorf("NumStates = %d, want >= 2", cm.NumStates())
	}
}

// TestConcurrentMatcherMatchesSequential checks the wrapper is a plain
// pass-through when used from one goroutine.
func TestConcurrentMatcherMatchesSequential(t *testing.T) {
	p := NewProfile()
	trace := shardTrace(2, 300)
	p.AddAll(trace)
	streams := p.HotStreams(AnalysisConfig{MinLen: 2, MaxLen: 100, MinCoverage: 0.1})
	if len(streams) == 0 {
		t.Fatal("no hot streams to match")
	}

	m, err := NewMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewConcurrentMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range trace {
		pf1, c1 := m.Observe(r)
		pf2, c2 := cm.Observe(r)
		if c1 != c2 || !reflect.DeepEqual(pf1, pf2) {
			t.Fatalf("ref %d: sequential (%v, %d) != concurrent (%v, %d)", i, pf1, c1, pf2, c2)
		}
	}
}
