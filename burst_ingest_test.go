package hotprefetch

// Tests for the bursty-sampling front end (ShardedConfig.Burst): exact
// shed/push reconciliation across policies under the race detector, the
// Add/AddBatch admission equivalence the Skip fast path must preserve, and
// the flag-value parser.

import (
	"strings"
	"sync"
	"testing"
)

// burstTestConfig is small enough to cross several awake/hibernate phases
// per test without the paper's 2.5M-check phase length.
func burstTestConfig() BurstConfig {
	return BurstConfig{Enabled: true, NCheck: 190, NInstr: 10, NAwake: 5, NHibernate: 5}
}

// TestBurstReconciliation is the books-balance acceptance check, run with
// every ingest policy and concurrent producers mixing Add and AddBatch (run
// under -race): at quiescence every produced reference is in exactly one of
// Pushed, Dropped, Sampled, or BurstShed, and everything pushed was
// consumed.
func TestBurstReconciliation(t *testing.T) {
	perProducer := 200000
	if testing.Short() {
		perProducer = 40000
	}
	const producers = 4
	for _, pol := range []IngestPolicy{Block, Drop, Sample} {
		t.Run(pol.String(), func(t *testing.T) {
			sp, err := NewShardedProfileConfig(ShardedConfig{
				Shards:  producers,
				RingCap: 256,
				Policy:  pol,
				Burst:   burstTestConfig(),
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					s := sp.Shard(p)
					batch := make([]Ref, 0, 64)
					for i := 0; i < perProducer; i++ {
						r := Ref{PC: p*1000 + i%37, Addr: uint64(p)<<32 | uint64(i%53)}
						if i&1 == 0 {
							if err := s.Add(r); err != nil {
								t.Error(err)
								return
							}
							continue
						}
						batch = append(batch, r)
						if len(batch) == cap(batch) {
							if err := s.AddBatch(batch); err != nil {
								t.Error(err)
								return
							}
							batch = batch[:0]
						}
					}
					if err := s.AddBatch(batch); err != nil {
						t.Error(err)
					}
				}(p)
			}
			wg.Wait()
			if err := sp.Flush(); err != nil {
				t.Fatal(err)
			}
			st := sp.Stats()
			produced := uint64(producers * perProducer)
			if got := st.Pushed + st.Dropped + st.Sampled + st.BurstShed; got != produced {
				t.Errorf("pushed %d + dropped %d + sampled %d + burstShed %d = %d, want %d produced",
					st.Pushed, st.Dropped, st.Sampled, st.BurstShed, got, produced)
			}
			if st.Consumed != st.Pushed {
				t.Errorf("consumed %d != pushed %d at quiescence", st.Consumed, st.Pushed)
			}
			if st.BurstShed == 0 {
				t.Error("burst front end shed nothing; sampling not exercised")
			}
			for i, ss := range st.Shards {
				if ss.BurstPhase != "awake" && ss.BurstPhase != "hibernating" {
					t.Errorf("shard %d BurstPhase = %q", i, ss.BurstPhase)
				}
			}
			sp.Close()
		})
	}
}

// TestBurstBatchMatchesAdd is the admission-equivalence check for the Skip
// fast path: the same reference sequence through per-reference Add and
// through AddBatch in varying chunk sizes must admit exactly the same
// references (the controller is deterministic), yielding identical push,
// shed, and grammar accounting.
func TestBurstBatchMatchesAdd(t *testing.T) {
	trace := coreTrace(300000)
	run := func(chunk int) Stats {
		sp, err := NewShardedProfileConfig(ShardedConfig{
			Shards: 1,
			Burst:  burstTestConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Close()
		s := sp.Shard(0)
		if chunk <= 1 {
			for _, r := range trace {
				if err := s.Add(r); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for pos := 0; pos < len(trace); {
				end := pos + 1 + (pos/3)%chunk // varying, deterministic sizes
				if end > len(trace) {
					end = len(trace)
				}
				if err := s.AddBatch(trace[pos:end]); err != nil {
					t.Fatal(err)
				}
				pos = end
			}
		}
		if err := sp.Flush(); err != nil {
			t.Fatal(err)
		}
		return sp.Stats()
	}
	want := run(1)
	if want.Pushed == 0 || want.BurstShed == 0 {
		t.Fatalf("degenerate baseline: pushed %d, shed %d", want.Pushed, want.BurstShed)
	}
	for _, chunk := range []int{7, 64, 256} {
		got := run(chunk)
		if got.Pushed != want.Pushed || got.BurstShed != want.BurstShed {
			t.Errorf("chunk %d: pushed/shed = %d/%d, want %d/%d",
				chunk, got.Pushed, got.BurstShed, want.Pushed, want.BurstShed)
		}
		if got.GrammarSize != want.GrammarSize {
			t.Errorf("chunk %d: grammar size %d, want %d", chunk, got.GrammarSize, want.GrammarSize)
		}
	}
}

// TestBurstShedRateTracksConfig checks the deterministic sampling rate lands
// where the counters say it must: with NCheck 190 / NInstr 10 and symmetric
// awake/hibernate phases, the long-run admitted fraction is OverallRate —
// awake instrumented checks over all checks.
func TestBurstShedRateTracksConfig(t *testing.T) {
	sp, err := NewShardedProfileConfig(ShardedConfig{Shards: 1, Burst: burstTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	s := sp.Shard(0)
	const total = 400000
	buf := make([]Ref, 100)
	for i := 0; i < total/len(buf); i++ {
		for j := range buf {
			buf[j] = Ref{PC: j, Addr: uint64(j)}
		}
		if err := s.AddBatch(buf); err != nil {
			t.Fatal(err)
		}
	}
	st := sp.Stats()
	// Awake: 10/200 instrumented; hibernating period: 1/200 instrumented but
	// shed. Overall admitted = (5*10)/((5+5)*200) = 2.5%.
	admitted := float64(st.Pushed) / float64(total)
	if admitted < 0.015 || admitted > 0.035 {
		t.Errorf("admitted fraction %.4f, want ~0.025 (burst shed %d, pushed %d)",
			admitted, st.BurstShed, st.Pushed)
	}
	if evs := sp.Observer().Count(EventBurstHibernate); evs == 0 {
		t.Error("no burst hibernation events across 400k references")
	}
	if evs := sp.Observer().Count(EventBurstAwake); evs == 0 {
		t.Error("no burst wake events across 400k references")
	}
}

// TestBurstMetricsExposition checks the burst series reach the Prometheus
// endpoint.
func TestBurstMetricsExposition(t *testing.T) {
	sp, err := NewShardedProfileConfig(ShardedConfig{Shards: 1, Burst: BurstConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	s := sp.Shard(0)
	for i := 0; i < 1000; i++ {
		if err := s.Add(Ref{PC: i % 7, Addr: uint64(i % 5)}); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	sp.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"hotprefetch_burst_shed_total",
		"hotprefetch_burst_sampling_rate 0.005",
		"hotprefetch_burst_overall_rate 0.0001",
		"hotprefetch_burst_duty_ratio",
		"hotprefetch_compress_latency_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestParseBurstConfig(t *testing.T) {
	cases := []struct {
		in      string
		want    BurstConfig
		wantErr bool
	}{
		{"", BurstConfig{}, false},
		{"off", BurstConfig{}, false},
		{"paper", BurstConfig{Enabled: true}, false},
		{"190:10:5:5", BurstConfig{Enabled: true, NCheck: 190, NInstr: 10, NAwake: 5, NHibernate: 5}, false},
		{"0:0:0:0", BurstConfig{Enabled: true}, false},
		{"190:10:5", BurstConfig{}, true},
		{"a:b:c:d", BurstConfig{}, true},
		{"-1:10:5:5", BurstConfig{}, true},
	}
	for _, c := range cases {
		got, err := ParseBurstConfig(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseBurstConfig(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseBurstConfig(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if _, err := NewShardedProfileConfig(ShardedConfig{Burst: BurstConfig{Enabled: true, NCheck: -5}}); err == nil {
		t.Error("negative burst counter passed Validate")
	}
	// The four-counter form must round-trip into the controller config with
	// paper defaults for zeros.
	cc := BurstConfig{Enabled: true, NInstr: 30}.controllerConfig()
	if cc.NCheck0 != 11940 || cc.NInstr0 != 30 {
		t.Errorf("controllerConfig zero-fill = %+v", cc)
	}
}
