package hotprefetch_test

import (
	"fmt"

	"hotprefetch"
)

// traversal fabricates the (pc, addr) sequence of one structure walk.
func traversal(pcBase int, addrBase uint64, n int) []hotprefetch.Ref {
	refs := make([]hotprefetch.Ref, n)
	for i := range refs {
		refs[i] = hotprefetch.Ref{PC: pcBase + i, Addr: addrBase + uint64(i)*64}
	}
	return refs
}

// ExampleProfile shows the paper's §2 pipeline: append data references
// online, then extract hot data streams.
func ExampleProfile() {
	profile := hotprefetch.NewProfile()
	walk := traversal(100, 0x8000, 12)
	for lap := 0; lap < 30; lap++ {
		profile.AddAll(walk)
		profile.Add(hotprefetch.Ref{PC: 999, Addr: uint64(0xF0000 + lap*4096)}) // noise
	}

	streams := profile.HotStreams(hotprefetch.AnalysisConfig{
		MinLen: 10, MaxLen: 50, MinUnique: 10, MinCoverage: 0.01,
	})
	s := streams[0]
	fmt.Printf("streams: %d\n", len(streams))
	fmt.Printf("hottest: %d refs, %.0f%% of trace\n", len(s.Refs), 100*s.Coverage(profile.Len()))
	// Output:
	// streams: 1
	// hottest: 12 refs, 92% of trace
}

// ExampleMatcher shows the paper's §3 engine: one DFSM matches all stream
// prefixes; completing a head yields the remaining addresses to prefetch.
func ExampleMatcher() {
	profile := hotprefetch.NewProfile()
	walk := traversal(100, 0x8000, 12)
	for lap := 0; lap < 30; lap++ {
		profile.AddAll(walk)
		profile.Add(hotprefetch.Ref{PC: 999, Addr: uint64(0xF0000 + lap*4096)}) // noise
	}
	streams := profile.HotStreams(hotprefetch.AnalysisConfig{
		MinLen: 10, MaxLen: 50, MinCoverage: 0.01,
	})

	matcher, err := hotprefetch.NewMatcher(streams, 2 /* headLen, §4.3 */)
	if err != nil {
		panic(err)
	}
	for i, r := range walk {
		if prefetch, _ := matcher.Observe(r); prefetch != nil {
			fmt.Printf("matched after %d refs; prefetch %d addresses, first 0x%x\n",
				i+1, len(prefetch), prefetch[0])
			break
		}
	}
	// Output:
	// matched after 2 refs; prefetch 10 addresses, first 0x8080
}
