package hotprefetch

import "sync"

// SafeProfile is a Profile safe for concurrent use: multiple goroutines may
// Add references while others snapshot hot streams. The underlying online
// algorithms are inherently sequential (the paper's system profiles a
// single-threaded program), so SafeProfile serializes access with a mutex;
// for single-goroutine use, Profile avoids the locking cost.
type SafeProfile struct {
	mu sync.Mutex
	p  *Profile
}

// NewSafeProfile returns an empty concurrent-safe profile.
func NewSafeProfile() *SafeProfile {
	return &SafeProfile{p: NewProfile()}
}

// Add appends one data reference to the profile.
func (s *SafeProfile) Add(r Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.Add(r)
}

// AddAll appends each reference in order, atomically with respect to other
// calls.
func (s *SafeProfile) AddAll(refs []Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.AddAll(refs)
}

// Len returns the number of references added so far.
func (s *SafeProfile) Len() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Len()
}

// HotStreams extracts the profile's hot data streams; see Profile.HotStreams.
func (s *SafeProfile) HotStreams(cfg AnalysisConfig) []Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.HotStreams(cfg)
}
