package hotprefetch

// The networked multi-tenant profiling service: everything below PR 7 ran in
// one process — profiled workload and profile in the same address space. The
// Service turns the sharded profile into a deployable system: remote clients
// capture (pc, addr) reference streams with the client package, frame them
// with internal/tracefile's fuzz-hardened wire format, and publish them over
// HTTP; the service streams each body through a chunked decoder (never
// materializing an upload), routes it to the publishing tenant's own
// ShardedProfile, and serves per-tenant hot streams, stats, and Prometheus
// metrics back out. The paper's bursty tracing (§2.1–2.2) is what makes the
// arrangement affordable: a fleet of clients each sampling ~0.5% of its
// references can share one central profile service — the PGO "central
// profile service for an ephemeral fleet" shape.
//
// Tenancy is key-based and auth-free (put real authentication in front of
// the service; the key is an isolation unit, not a credential): every tenant
// key maps to an independent ShardedProfile with its own shards, grammars,
// ingestion policy, burst front end, and reference quota, so one tenant's
// volume can never shed, slow, or pollute another's profile. The registry is
// bounded: past MaxTenants, publishing under a new key evicts the
// least-recently-published tenant (its profile is closed and dropped;
// in-flight publishes to it fail with 410 Gone, never a partial account).

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hotprefetch/internal/ref"
	"hotprefetch/internal/tracefile"
)

// Service defaults; see ServiceConfig.
const (
	defaultMaxTenants     = 64
	defaultMaxBodyBytes   = 32 << 20
	defaultMetricsTenants = 16

	// publishChunk is the streaming-decode granularity of the ingest
	// endpoint: one chunk of references is resident per in-flight publish,
	// however long the upload claims to be.
	publishChunk = 2048

	// maxTenantKeyLen bounds tenant keys; they become Prometheus label
	// values, map keys, and snapshot file names, so they must stay small,
	// printable, and filesystem-safe.
	maxTenantKeyLen = 64

	// defaultSnapshotInterval is the periodic checkpoint cadence when
	// ServiceConfig.SnapshotDir is set without an explicit interval.
	defaultSnapshotInterval = 60 * time.Second
)

// ErrServiceClosed is returned by Service.Tenant after Close.
var ErrServiceClosed = errors.New("hotprefetch: service closed")

// ErrBadTenantKey is returned for tenant keys that are empty, too long, or
// contain characters outside [A-Za-z0-9._-].
var ErrBadTenantKey = errors.New("hotprefetch: bad tenant key (want 1-64 chars of [A-Za-z0-9._-])")

// ServiceConfig configures a multi-tenant profiling Service.
type ServiceConfig struct {
	// Tenant is the profile template instantiated for every tenant key:
	// shard count, ingestion policy, grammar budget, analysis pipeline,
	// burst front end, and — the per-tenant budget — RefQuota. Each tenant
	// gets an independent ShardedProfile built from this configuration.
	Tenant ShardedConfig

	// MaxTenants bounds the registry (0 means 64). Publishing under a new
	// key when the registry is full evicts the least-recently-published
	// tenant.
	MaxTenants int

	// MaxBodyBytes caps one publish body (0 means 32 MiB). The cap bounds
	// wire bytes per request; the streaming decoder already bounds resident
	// memory to one chunk regardless.
	MaxBodyBytes int64

	// MetricsTenants bounds the tenant label cardinality of the Prometheus
	// exposition (0 means 16): the busiest MetricsTenants tenants get their
	// own labeled series, everything else is aggregated under
	// tenant="_other", so a tenant churn storm cannot blow up the scrape.
	MetricsTenants int

	// SnapshotDir, when non-empty, enables durable per-tenant snapshots
	// under <SnapshotDir>/<key>.snap: newly created tenants warm-start from
	// their file when present, CheckpointAll (and the periodic loop) writes
	// them atomically, and hdsprofd checkpoints every tenant during
	// graceful drain. See service_snapshot.go.
	SnapshotDir string

	// SnapshotInterval is the periodic checkpoint cadence when SnapshotDir
	// is set: 0 means 60s, negative disables the background loop (leaving
	// checkpoints to CheckpointAll and the /snapshot endpoints).
	SnapshotInterval time.Duration

	// Predictor names the prefetch-predictor implementation this deployment
	// selects for consumers of its hot streams (see RegisterPredictor);
	// it is validated against the registry and surfaced in ServiceStats so
	// clients and dashboards agree on which implementation the detected
	// streams will drive. Empty means DefaultPredictor.
	Predictor string
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	// The service resolves PrepassAuto to On: its hot-stream contract is
	// equivalence-after-expansion (BankedStreams from grammar cycles), which
	// the two-level ingest front end preserves, and the networked path is
	// exactly where the per-reference compression cost compounds. Tenants
	// that need bit-identical grammars set Mode to PrepassOff explicitly.
	if c.Tenant.Prepass.Mode == PrepassAuto {
		c.Tenant.Prepass.Mode = PrepassOn
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = defaultMaxTenants
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = defaultMaxBodyBytes
	}
	if c.MetricsTenants <= 0 {
		c.MetricsTenants = defaultMetricsTenants
	}
	if c.SnapshotDir != "" && c.SnapshotInterval == 0 {
		c.SnapshotInterval = defaultSnapshotInterval
	}
	if c.Predictor == "" {
		c.Predictor = DefaultPredictor
	}
	return c
}

// Validate reports whether the configuration is well-formed.
func (c ServiceConfig) Validate() error {
	if err := c.Tenant.Validate(); err != nil {
		return fmt.Errorf("Tenant: %w", err)
	}
	if c.Predictor != "" && !predictorRegistered(c.Predictor) {
		return fmt.Errorf("hotprefetch: ServiceConfig.Predictor %q is not registered (have %v)",
			c.Predictor, PredictorNames())
	}
	return nil
}

// Tenant is one tenant's registry entry: its key, its profile, and its
// publish accounting. A Tenant handle obtained before an eviction stays
// usable for reads; publishes to it fail with ErrClosed once the eviction's
// Close lands.
type Tenant struct {
	key string
	sp  *ShardedProfile

	lastUsed  atomic.Uint64 // service logical clock at last publish
	publishes atomic.Uint64 // publish requests that reached this tenant
	published atomic.Uint64 // references accepted from publish bodies

	// gen is the tenant's snapshot generation: the generation restored at
	// warm start (or adopted from POST /snapshot), advanced by each
	// successful checkpoint. See service_snapshot.go.
	gen atomic.Uint64

	closeOnce sync.Once
}

// Key returns the tenant key.
func (t *Tenant) Key() string { return t.key }

// Profile returns the tenant's ShardedProfile.
func (t *Tenant) Profile() *ShardedProfile { return t.sp }

func (t *Tenant) close() { t.closeOnce.Do(t.sp.Close) }

// Service is the networked multi-tenant profiling service: a bounded
// registry of per-tenant ShardedProfiles behind an HTTP ingest endpoint.
// Create one with NewService, mount Handler on a server, and Close it when
// done.
type Service struct {
	cfg ServiceConfig

	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool

	clock   atomic.Uint64 // logical LRU clock, bumped per publish
	closers sync.WaitGroup

	evictions     atomic.Uint64
	publishes     atomic.Uint64
	publishedRefs atomic.Uint64
	decodeErrors  atomic.Uint64
	rejected      atomic.Uint64

	// Snapshot machinery (see service_snapshot.go): snapMu serializes
	// checkpoint passes so generation advancement never races; snapStop
	// stops the periodic loop at Close.
	snapMu        sync.Mutex
	snapStop      chan struct{}
	snapLoads     atomic.Uint64
	snapLoadFails atomic.Uint64
	snapWrites    atomic.Uint64
	snapWriteErrs atomic.Uint64
	snapRefused   atomic.Uint64
}

// NewService returns a service with no tenants; tenants materialize on first
// publish (or Tenant call) and are torn down by LRU eviction or Close.
func NewService(cfg ServiceConfig) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	svc := &Service{cfg: cfg, tenants: make(map[string]*Tenant)}
	if cfg.SnapshotDir != "" && cfg.SnapshotInterval > 0 {
		svc.snapStop = make(chan struct{})
		svc.closers.Add(1)
		go svc.checkpointLoop(svc.snapStop)
	}
	return svc, nil
}

func validTenantKey(key string) bool {
	if len(key) == 0 || len(key) > maxTenantKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Tenant returns the tenant registered under key, creating it (and evicting
// the least-recently-published tenant if the registry is full) when absent.
func (svc *Service) Tenant(key string) (*Tenant, error) {
	if !validTenantKey(key) {
		return nil, ErrBadTenantKey
	}
	now := svc.clock.Add(1)
	svc.mu.RLock()
	t := svc.tenants[key]
	closed := svc.closed
	svc.mu.RUnlock()
	if t != nil {
		t.lastUsed.Store(now)
		return t, nil
	}
	if closed {
		return nil, ErrServiceClosed
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.closed {
		return nil, ErrServiceClosed
	}
	if t := svc.tenants[key]; t != nil {
		t.lastUsed.Store(now)
		return t, nil
	}
	if len(svc.tenants) >= svc.cfg.MaxTenants {
		svc.evictLRULocked()
	}
	sp, err := NewShardedProfileConfig(svc.cfg.Tenant)
	if err != nil {
		return nil, err
	}
	t = &Tenant{key: key, sp: sp}
	if svc.cfg.SnapshotDir != "" {
		svc.warmLoadLocked(t)
	}
	t.lastUsed.Store(now)
	svc.tenants[key] = t
	return t, nil
}

// Lookup returns the tenant registered under key without creating one.
func (svc *Service) Lookup(key string) (*Tenant, bool) {
	svc.mu.RLock()
	t, ok := svc.tenants[key]
	svc.mu.RUnlock()
	return t, ok
}

// evictLRULocked removes the least-recently-published tenant and closes its
// profile off the registry lock: an eviction must never stall other tenants'
// publishes behind a draining profile. Callers hold svc.mu.
func (svc *Service) evictLRULocked() {
	var victim *Tenant
	var oldest uint64
	for _, t := range svc.tenants {
		if u := t.lastUsed.Load(); victim == nil || u < oldest {
			victim, oldest = t, u
		}
	}
	if victim == nil {
		return
	}
	delete(svc.tenants, victim.key)
	svc.evictions.Add(1)
	svc.closers.Add(1)
	go func() {
		defer svc.closers.Done()
		victim.close()
	}()
}

// Evict removes the tenant registered under key, closing its profile after
// draining, and reports whether it existed. In-flight publishes race the
// close and fail with 410 Gone once it lands; their accounting stays exact
// (every decoded reference is either admitted by the profile before the
// close or reported failed to the client, never half-counted).
func (svc *Service) Evict(key string) bool {
	svc.mu.Lock()
	t, ok := svc.tenants[key]
	if ok {
		delete(svc.tenants, key)
		svc.evictions.Add(1)
	}
	svc.mu.Unlock()
	if !ok {
		return false
	}
	t.close()
	return true
}

// Close evicts every tenant, waits for their profiles to drain, and fails
// subsequent publishes with 503. Close is idempotent.
func (svc *Service) Close() {
	svc.mu.Lock()
	if svc.closed {
		svc.mu.Unlock()
		svc.closers.Wait()
		return
	}
	svc.closed = true
	if svc.snapStop != nil {
		close(svc.snapStop)
		svc.snapStop = nil
	}
	tenants := make([]*Tenant, 0, len(svc.tenants))
	for _, t := range svc.tenants {
		tenants = append(tenants, t)
	}
	svc.tenants = make(map[string]*Tenant)
	svc.mu.Unlock()
	for _, t := range tenants {
		t.close()
	}
	svc.closers.Wait()
}

// TenantCount returns the number of registered tenants.
func (svc *Service) TenantCount() int {
	svc.mu.RLock()
	defer svc.mu.RUnlock()
	return len(svc.tenants)
}

// snapshotTenants returns the live tenants, unordered.
func (svc *Service) snapshotTenants() []*Tenant {
	svc.mu.RLock()
	out := make([]*Tenant, 0, len(svc.tenants))
	for _, t := range svc.tenants {
		out = append(out, t)
	}
	svc.mu.RUnlock()
	return out
}

// TenantStats is one tenant's slice of a ServiceStats snapshot.
type TenantStats struct {
	Key           string `json:"key"`
	Generation    uint64 `json:"generation"`
	Publishes     uint64 `json:"publishes"`
	PublishedRefs uint64 `json:"published_refs"`
	Profile       Stats  `json:"profile"`
}

// ServiceStats is a point-in-time snapshot of the whole service: per-tenant
// profile stats plus registry and ingest-endpoint counters. Like Stats it is
// approximate under concurrency and marshals to JSON.
type ServiceStats struct {
	// Predictor is the registry name of the implementation this deployment
	// selected (ServiceConfig.Predictor after defaulting).
	Predictor string `json:"predictor"`

	Tenants       []TenantStats `json:"tenants"`
	TenantCount   int           `json:"tenant_count"`
	Evictions     uint64        `json:"evictions"`
	Publishes     uint64        `json:"publishes"`
	PublishedRefs uint64        `json:"published_refs"`
	DecodeErrors  uint64        `json:"decode_errors"`
	Rejected      uint64        `json:"rejected"`

	// Snapshot counters (see service_snapshot.go): warm loads that
	// succeeded, loads the format validator rejected, checkpoints written,
	// checkpoint I/O failures, and checkpoints refused because the existing
	// file carried a newer generation.
	SnapshotLoads        uint64 `json:"snapshot_loads"`
	SnapshotLoadFailures uint64 `json:"snapshot_load_failures"`
	SnapshotWrites       uint64 `json:"snapshot_writes"`
	SnapshotWriteErrors  uint64 `json:"snapshot_write_errors"`
	SnapshotRefused      uint64 `json:"snapshot_refused"`
}

// Stats returns a snapshot of the service's counters, tenants sorted by key.
func (svc *Service) Stats() ServiceStats {
	tenants := svc.snapshotTenants()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].key < tenants[j].key })
	st := ServiceStats{
		Predictor:     svc.cfg.Predictor,
		Tenants:       make([]TenantStats, len(tenants)),
		TenantCount:   len(tenants),
		Evictions:     svc.evictions.Load(),
		Publishes:     svc.publishes.Load(),
		PublishedRefs: svc.publishedRefs.Load(),
		DecodeErrors:  svc.decodeErrors.Load(),
		Rejected:      svc.rejected.Load(),

		SnapshotLoads:        svc.snapLoads.Load(),
		SnapshotLoadFailures: svc.snapLoadFails.Load(),
		SnapshotWrites:       svc.snapWrites.Load(),
		SnapshotWriteErrors:  svc.snapWriteErrs.Load(),
		SnapshotRefused:      svc.snapRefused.Load(),
	}
	for i, t := range tenants {
		st.Tenants[i] = TenantStats{
			Key:           t.key,
			Generation:    t.gen.Load(),
			Publishes:     t.publishes.Load(),
			PublishedRefs: t.published.Load(),
			Profile:       t.sp.Stats(),
		}
	}
	return st
}

// decodeBufs is one publish's resident decoding state, pooled across
// requests so sustained ingest allocates no per-chunk buffers.
type decodeBufs struct {
	raw   []ref.Ref
	batch []Ref
}

var decodePool = sync.Pool{New: func() any {
	return &decodeBufs{raw: make([]ref.Ref, publishChunk), batch: make([]Ref, publishChunk)}
}}

// Handler returns the service's HTTP API:
//
//	POST /ingest?tenant=KEY[&stream=ID]  body: tracefile-framed references
//	GET  /hotstreams?tenant=KEY[&top=N]  banked hot streams as JSON
//	GET  /snapshot?tenant=KEY            tenant durable state, snapshot format
//	POST /snapshot?tenant=KEY            restore an uploaded snapshot
//	GET  /stats                          ServiceStats as JSON
//	GET  /metrics                        Prometheus text exposition
//
// Mount it on an http.Server whose Shutdown is called before Service.Close,
// so in-flight publishes and scrapes finish against a live registry.
func (svc *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", svc.handleIngest)
	mux.HandleFunc("GET /hotstreams", svc.handleHotStreams)
	mux.HandleFunc("GET /snapshot", svc.handleSnapshotGet)
	mux.HandleFunc("POST /snapshot", svc.handleSnapshotPost)
	mux.HandleFunc("GET /stats", svc.handleStats)
	mux.Handle("GET /metrics", svc.MetricsHandler())
	return mux
}

// streamID extracts the logical stream identity of a publish: the client's
// explicit &stream= value when present, else a hash of tenant key and remote
// address — so one client's connection keeps landing on one shard even when
// the client doesn't pick an id.
func streamID(r *http.Request, tenant string) uint64 {
	if s := r.URL.Query().Get("stream"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			return v
		}
	}
	h := fnv.New64a()
	io.WriteString(h, tenant)
	io.WriteString(h, "\x00")
	io.WriteString(h, r.RemoteAddr)
	return h.Sum64()
}

// ingestResult is the ingest endpoint's success response body.
type ingestResult struct {
	Tenant   string `json:"tenant"`
	Accepted uint64 `json:"accepted"`
	// TenantRefs is the tenant's cumulative published reference count, the
	// number a client can reconcile its own books against.
	TenantRefs uint64 `json:"tenant_refs"`
}

func (svc *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("tenant")
	t, err := svc.Tenant(key)
	switch {
	case errors.Is(err, ErrBadTenantKey):
		svc.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, ErrServiceClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	stream := streamID(r, key)
	body := http.MaxBytesReader(w, r.Body, svc.cfg.MaxBodyBytes)
	dec, err := tracefile.NewDecoder(body)
	if err != nil {
		svc.decodeErrors.Add(1)
		http.Error(w, err.Error(), httpDecodeStatus(err))
		return
	}
	bufs := decodePool.Get().(*decodeBufs)
	defer decodePool.Put(bufs)
	// published counts refs admitted into the tenant's profile on every exit
	// path, success or failure: a request that dies mid-body (oversized,
	// truncated, tenant evicted) has still pushed its earlier chunks, and the
	// books must say so or per-tenant reconciliation would leak those refs.
	// Request-level success is counted separately in publishes.
	var accepted uint64
	defer func() {
		t.published.Add(accepted)
		svc.publishedRefs.Add(accepted)
	}()
	for {
		n, derr := dec.Next(bufs.raw)
		for i := 0; i < n; i++ {
			bufs.batch[i] = Ref{PC: bufs.raw[i].PC, Addr: bufs.raw[i].Addr}
		}
		if n > 0 {
			if perr := t.sp.PublishBatch(stream, bufs.batch[:n]); perr != nil {
				// The tenant was evicted (or the service closed) mid-publish;
				// nothing else returns an error from the profile's batch path.
				http.Error(w, fmt.Sprintf("tenant %q evicted during publish after %d refs: %v",
					key, accepted, perr), http.StatusGone)
				return
			}
			accepted += uint64(n)
		}
		if derr == io.EOF {
			break
		}
		if derr != nil {
			svc.decodeErrors.Add(1)
			http.Error(w, fmt.Sprintf("decode failed after %d refs: %v", accepted, derr),
				httpDecodeStatus(derr))
			return
		}
	}
	t.publishes.Add(1)
	svc.publishes.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ingestResult{
		Tenant:     key,
		Accepted:   accepted,
		// The deferred accounting hasn't run yet; fold this publish in so the
		// client sees a cumulative count that includes it.
		TenantRefs: t.published.Load() + accepted,
	})
}

// httpDecodeStatus maps a decode failure to its HTTP status: an oversized
// body (MaxBytesReader tripped) is 413, everything else a plain 400.
func httpDecodeStatus(err error) int {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// streamJSON is the wire shape of one hot stream.
type streamJSON struct {
	Refs []Ref  `json:"refs"`
	Heat uint64 `json:"heat"`
}

func (svc *Service) handleHotStreams(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("tenant")
	if !validTenantKey(key) {
		http.Error(w, ErrBadTenantKey.Error(), http.StatusBadRequest)
		return
	}
	t, ok := svc.Lookup(key)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown tenant %q", key), http.StatusNotFound)
		return
	}
	top := 20
	if s := r.URL.Query().Get("top"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad top", http.StatusBadRequest)
			return
		}
		top = v
	}
	// BankedStreams is safe against live producers and consumers; it serves
	// the streams grammar-budget cycles have extracted so far, which is the
	// continuously-updated view a service wants (HotStreams requires
	// producer quiescence, which a server never has).
	streams := t.sp.BankedStreams(top)
	out := make([]streamJSON, len(streams))
	for i, s := range streams {
		out[i] = streamJSON{Refs: s.Refs, Heat: s.Heat}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Tenant  string       `json:"tenant"`
		Streams []streamJSON `json:"streams"`
	}{key, out})
}

func (svc *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(svc.Stats())
}
