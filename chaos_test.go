package hotprefetch

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotprefetch/internal/fault"
)

// chaosTrace builds producer p's reference stream: a repeating 12-ref hot
// stream plus per-repetition noise, sized so grammar budgets cycle many
// times over the run.
func chaosTrace(p, refs int) []Ref {
	stream := make([]Ref, 12)
	for i := range stream {
		stream[i] = Ref{PC: 500*p + i, Addr: uint64(0x4000*p + 8*i)}
	}
	trace := make([]Ref, 0, refs)
	for r := 0; len(trace) < refs; r++ {
		trace = append(trace, stream...)
		trace = append(trace, Ref{PC: 77000 + p, Addr: uint64(0xbeef0000 + 64*r)})
	}
	return trace[:refs]
}

// waitGoroutines polls until the live goroutine count returns to the given
// baseline (plus slack for runtime housekeeping), failing after a deadline.
// Abandoned analysis helpers are allowed to finish their injected delays
// within the window.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC() // nudge finalization of abandoned helpers
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d live, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkCycleInvariant asserts the failure-containment accounting contract:
// at quiescence every budget cycle reached exactly one terminal state.
func checkCycleInvariant(t *testing.T, st Stats) {
	t.Helper()
	if st.Resets != st.CyclesAnalyzed+st.AnalysesFailed+st.AnalysesSkipped {
		t.Errorf("cycle accounting broken: Resets=%d != CyclesAnalyzed=%d + AnalysesFailed=%d + AnalysesSkipped=%d",
			st.Resets, st.CyclesAnalyzed, st.AnalysesFailed, st.AnalysesSkipped)
	}
}

// chaosScenario is one fault profile for the policy × fault matrix.
type chaosScenario struct {
	name    string
	faults  fault.SeededConfig
	timeout time.Duration // AnalysisTimeout
	// verify receives the final stats and the injector for exact
	// reconciliation of injected faults against recorded failures.
	verify func(t *testing.T, st Stats, inj *fault.Seeded)
}

// TestChaosPolicyFaultMatrix drives every ingest policy through every fault
// scenario with workers, budgets, and breakers enabled, under -race, and
// asserts liveness (all calls return, goroutines return to baseline) plus
// exact shed and failure accounting.
func TestChaosPolicyFaultMatrix(t *testing.T) {
	perShard := 300_000
	if testing.Short() {
		perShard = 60_000
	}
	scenarios := []chaosScenario{
		{
			name:   "panic-sometimes",
			faults: fault.SeededConfig{Seed: 1, PanicRate: 0.2},
			verify: func(t *testing.T, st Stats, inj *fault.Seeded) {
				// Every injected panic is one recorded failure: skipped jobs
				// never reach the injector, and no other fault is armed.
				if st.AnalysesFailed != inj.Panics() {
					t.Errorf("AnalysesFailed=%d, want exactly injected panics %d",
						st.AnalysesFailed, inj.Panics())
				}
			},
		},
		{
			name:    "panic-always",
			faults:  fault.SeededConfig{Seed: 2, PanicRate: 1},
			timeout: 0,
			verify: func(t *testing.T, st Stats, inj *fault.Seeded) {
				if st.CyclesAnalyzed != 0 {
					t.Errorf("CyclesAnalyzed=%d with PanicRate 1, want 0", st.CyclesAnalyzed)
				}
				if st.AnalysesFailed != inj.Panics() {
					t.Errorf("AnalysesFailed=%d, want exactly injected panics %d",
						st.AnalysesFailed, inj.Panics())
				}
				// Breakers are per shard and trip on consecutive failures;
				// with PanicRate 1 every failure run is consecutive, so any
				// shard that failed threshold times must have tripped.
				for i, ss := range st.Shards {
					if ss.AnalysesFailed >= 3 && ss.BreakerTransitions == 0 {
						t.Errorf("shard %d: %d consecutive failures but breaker never tripped",
							i, ss.AnalysesFailed)
					}
				}
			},
		},
		{
			name:    "deadline",
			faults:  fault.SeededConfig{Seed: 3, DelayRate: 1, Delay: 5 * time.Millisecond},
			timeout: 500 * time.Microsecond,
			verify: func(t *testing.T, st Stats, inj *fault.Seeded) {
				// Every admitted job is delayed past the deadline: all fail
				// with ErrAnalysisTimeout, none complete.
				if st.CyclesAnalyzed != 0 {
					t.Errorf("CyclesAnalyzed=%d with every analysis delayed past its deadline, want 0",
						st.CyclesAnalyzed)
				}
				if st.AnalysesFailed != inj.Delays() {
					t.Errorf("AnalysesFailed=%d, want exactly injected delays %d",
						st.AnalysesFailed, inj.Delays())
				}
			},
		},
		{
			name:   "ring-pressure",
			faults: fault.SeededConfig{Seed: 4, RingFullRate: 0.05},
			verify: func(t *testing.T, st Stats, inj *fault.Seeded) {
				if st.AnalysesFailed != 0 || st.AnalysesSkipped != 0 {
					t.Errorf("failures recorded with no analysis faults armed: failed=%d skipped=%d",
						st.AnalysesFailed, st.AnalysesSkipped)
				}
				if inj.RingFulls() == 0 {
					t.Error("ring pressure scenario injected no full-ring events")
				}
			},
		},
		{
			name: "combo",
			faults: fault.SeededConfig{
				Seed: 5, PanicRate: 0.1,
				DelayRate: 0.1, Delay: 2 * time.Millisecond,
				RingFullRate: 0.02,
			},
			timeout: time.Millisecond,
			verify: func(t *testing.T, st Stats, inj *fault.Seeded) {
				// A job fails if it drew a panic or a deadline-busting delay,
				// so the failure count is at least the larger injection
				// count. No exact upper bound: the tight 1ms deadline also
				// catches genuine (uninjected) analysis overruns, which is
				// the containment working as designed.
				lo := inj.Panics()
				if inj.Delays() > lo {
					lo = inj.Delays()
				}
				if st.AnalysesFailed < lo {
					t.Errorf("AnalysesFailed=%d below injection floor %d (panics=%d delays=%d)",
						st.AnalysesFailed, lo, inj.Panics(), inj.Delays())
				}
			},
		},
	}
	for _, policy := range []IngestPolicy{Block, Drop, Sample} {
		for _, sc := range scenarios {
			t.Run(policy.String()+"/"+sc.name, func(t *testing.T) {
				runChaos(t, policy, sc, perShard)
			})
		}
	}
}

func runChaos(t *testing.T, policy IngestPolicy, sc chaosScenario, perShard int) {
	const shards = 4
	base := runtime.NumGoroutine()
	inj := fault.NewSeeded(sc.faults)
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            shards,
		Policy:            policy,
		RingCap:           256,
		MaxGrammarSymbols: 64,
		AnalysisWorkers:   2,
		AnalysisTimeout:   sc.timeout,
		BreakerThreshold:  3,
		BreakerBackoff:    time.Millisecond,
		BreakerMaxBackoff: 8 * time.Millisecond,
		CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05},
		FlushStallTimeout: 10 * time.Second,
		Fault:             inj,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trace := chaosTrace(i+1, perShard)
			for off := 0; off < len(trace); off += 512 {
				end := off + 512
				if end > len(trace) {
					end = len(trace)
				}
				if err := sp.AddBatch(i, trace[off:end]); err != nil {
					t.Errorf("shard %d AddBatch: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// Liveness: the lossy and strict readers both return even when every
	// analysis is failing.
	if _, err := sp.HotStreamsErr(AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05}); err != nil {
		t.Errorf("HotStreamsErr under chaos: %v", err)
	}
	sp.Close()
	sp.Close() // idempotent under chaos too

	st := sp.Stats()
	checkCycleInvariant(t, st)
	// Shed accounting: every produced reference is on the books exactly
	// once — pushed, dropped, or sampled out.
	for i, ss := range st.Shards {
		total := ss.Pushed + ss.Dropped + ss.Sampled
		if total != uint64(perShard) {
			t.Errorf("shard %d books %d references (pushed=%d dropped=%d sampled=%d), want %d",
				i, total, ss.Pushed, ss.Dropped, ss.Sampled, perShard)
		}
	}
	if policy == Block && (st.Dropped != 0 || st.Sampled != 0) {
		t.Errorf("Block policy shed references: dropped=%d sampled=%d", st.Dropped, st.Sampled)
	}
	if sc.verify != nil {
		sc.verify(t, st, inj)
	}
	waitGoroutines(t, base)
}

// TestChaosBreakerRecovery walks one shard's breaker through its full
// closed → open → half-open → closed cycle: the first failures trip it,
// cycles during the backoff are skipped without analysis, and the half-open
// probe's success restores full service.
func TestChaosBreakerRecovery(t *testing.T) {
	var failures atomic.Int64
	hooks := &fault.Hooks{AnalysisFn: func(int) fault.Outcome {
		// Exactly the first `threshold` analyses panic; everything after
		// succeeds, so the probe must close the breaker.
		if failures.Add(1) <= 3 {
			return fault.Outcome{Panic: true}
		}
		return fault.Outcome{}
	}}
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            1,
		MaxGrammarSymbols: 64,
		BreakerThreshold:  3,
		BreakerBackoff:    time.Millisecond,
		BreakerMaxBackoff: 4 * time.Millisecond,
		CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05},
		Fault:             hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	trace := chaosTrace(1, 4096)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := sp.Shard(0).AddAll(trace); err != nil {
			t.Fatal(err)
		}
		if err := sp.Flush(); err != nil {
			t.Fatal(err)
		}
		st := sp.Stats()
		if st.Shards[0].BreakerState == "closed" && st.CyclesAnalyzed > 0 && st.AnalysesFailed >= 3 {
			// Recovered: trip (closed→open), probe (open→half-open), and
			// restore (half-open→closed) are three recorded transitions.
			if st.BreakerTransitions < 3 {
				t.Fatalf("BreakerTransitions=%d after a full recovery cycle, want >= 3", st.BreakerTransitions)
			}
			checkCycleInvariant(t, st)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered; stats=%v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosCloseRacesAnalysis closes the profile while slow background
// analyses are still in flight: Close must drain the pool and return, and
// every goroutine must exit.
func TestChaosCloseRacesAnalysis(t *testing.T) {
	base := runtime.NumGoroutine()
	inj := fault.NewSeeded(fault.SeededConfig{Seed: 9, DelayRate: 1, Delay: 2 * time.Millisecond})
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards:            2,
		MaxGrammarSymbols: 64,
		AnalysisWorkers:   2,
		CycleAnalysis:     AnalysisConfig{MinLen: 4, MaxLen: 64, MinCoverage: 0.05},
		Fault:             inj,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trace := chaosTrace(i+1, 50_000)
			for {
				if err := sp.Shard(i).AddAll(trace); err != nil {
					return // ErrClosed: the race landed
				}
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let cycles queue behind slow analyses

	closed := make(chan struct{})
	go func() {
		sp.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return with analyses in flight")
	}
	wg.Wait()
	checkCycleInvariant(t, sp.Stats())
	waitGoroutines(t, base)
}

// TestChaosDoubleCloseBlockedProducers parks Block producers on rings the
// injector holds permanently full, then closes the profile twice: every
// parked Add must fail over to ErrClosed, both Closes must return, and no
// goroutine may leak.
func TestChaosDoubleCloseBlockedProducers(t *testing.T) {
	base := runtime.NumGoroutine()
	hooks := &fault.Hooks{RingFullFn: func(int) bool { return true }}
	sp, err := NewShardedProfileConfig(ShardedConfig{
		Shards: 2,
		Policy: Block,
		Fault:  hooks,
	})
	if err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The ring is never acceptable, so this Add parks until Close.
			errs <- sp.Shard(i%2).Add(Ref{PC: i, Addr: uint64(i)})
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the producers park

	closed := make(chan struct{})
	go func() {
		sp.Close()
		sp.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("double Close did not return with producers parked on full rings")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("parked Add returned %v, want ErrClosed", err)
		}
	}
	waitGoroutines(t, base)
}

// TestConcurrentSwapsSerialized exercises the Swap build mutex: racing
// retrains from many goroutines must each publish exactly once (the swap
// count is exact) while observers keep stepping, under -race.
func TestConcurrentSwapsSerialized(t *testing.T) {
	const swappers, swapsEach = 8, 50
	trace := chaosTrace(1, 2000)
	streams := []Stream{{Refs: trace[:12], Heat: 100}}
	cm, err := NewConcurrentMatcher(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm.EnableAccuracyTracking(0)

	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
				observeAll(cm, trace)
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < swappers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < swapsEach; k++ {
				var set []Stream
				if (g+k)%2 == 0 {
					set = streams
				}
				if err := cm.Swap(set, 2); err != nil {
					t.Errorf("Swap: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	obs.Wait()

	if got := cm.Swaps(); got != swappers*swapsEach {
		t.Errorf("Swaps=%d, want exactly %d", got, swappers*swapsEach)
	}
	// The matcher is still serviceable after the storm.
	cm.Reset()
	observeAll(cm, trace)
	if cm.Observations() == 0 {
		t.Error("matcher stopped observing after concurrent swaps")
	}
}

// TestHotStreamsErrReportsFlushStall pins the strict/lossy reader split: a
// stalled consumer surfaces as an error from HotStreamsErr, while the lossy
// HotStreams wrapper returns the partial merge and records the stall in
// Stats.FlushStalls.
func TestHotStreamsErrReportsFlushStall(t *testing.T) {
	cfg := ShardedConfig{Shards: 1, FlushStallTimeout: 20 * time.Millisecond}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	sp := newShardedProfile(cfg) // consumers intentionally not started
	if err := sp.Shard(0).Add(Ref{PC: 1, Addr: 8}); err != nil {
		t.Fatal(err)
	}
	_, err := sp.HotStreamsErr(DefaultAnalysisConfig())
	if !errors.Is(err, ErrFlushStalled) {
		t.Fatalf("HotStreamsErr with a dead consumer = %v, want ErrFlushStalled", err)
	}
	if got := sp.Stats().FlushStalls; got != 0 {
		t.Fatalf("FlushStalls=%d after strict reader, want 0", got)
	}
	sp.HotStreams(DefaultAnalysisConfig())
	if got := sp.Stats().FlushStalls; got != 1 {
		t.Fatalf("FlushStalls=%d after lossy reader hit a stall, want 1", got)
	}
}
