package hotprefetch

// Service benchmarks for the networked multi-tenant ingest path: one publish
// request end to end (streaming decode through PublishBatch into a tenant's
// shard rings), sequentially and with concurrent tenants. Handler-level —
// httptest.NewRequest into Service.Handler, no TCP — so the numbers isolate
// the service's own cost and stay stable on CI machines.
//
//	go test -bench='ServiceIngest' -benchmem .
//
// Medians of 3 runs are recorded in BENCH_service.json; the headline is
// sustained ingest cost per reference (refs-ns/op metric).

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hotprefetch/internal/ref"
	"hotprefetch/internal/tracefile"
)

// benchBody frames n walk references once; benchmarks re-read the bytes.
func benchBody(b *testing.B, stream uint64, n int) []byte {
	b.Helper()
	refs := make([]ref.Ref, n)
	for i := range refs {
		refs[i] = ref.Ref{PC: int(stream%31) + i%7, Addr: stream<<20 + uint64(i%64)*8}
	}
	var buf bytes.Buffer
	if err := tracefile.Write(&buf, refs); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkServiceIngest measures one publish request — 2048 references
// streaming-decoded and routed to the tenant's shard — through the full
// handler, sequentially on one tenant.
func BenchmarkServiceIngest(b *testing.B) {
	svc, err := NewService(ServiceConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	handler := svc.Handler()
	const refsPerPublish = 2048
	body := benchBody(b, 1, refsPerPublish)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/ingest?tenant=bench&stream=1", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("ingest: %d %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*refsPerPublish), "refs-ns/op")
}

// BenchmarkServiceIngestParallel is the fleet shape: concurrent publishers
// spread across 16 tenants, each on its own stream, contending on the
// registry's read path and their tenants' producer locks.
func BenchmarkServiceIngestParallel(b *testing.B) {
	svc, err := NewService(ServiceConfig{MaxTenants: 16, Tenant: ShardedConfig{Shards: 4}})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	handler := svc.Handler()
	const refsPerPublish = 2048
	body := benchBody(b, 2, refsPerPublish)
	var nextClient atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ci := nextClient.Add(1)
		url := fmt.Sprintf("/ingest?tenant=bench-%02d&stream=%d", ci%16, ci)
		for pb.Next() {
			req := httptest.NewRequest("POST", url, bytes.NewReader(body))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("ingest: %d %s", rec.Code, rec.Body)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*refsPerPublish), "refs-ns/op")
	// Aggregate throughput across all publishers — the capacity-planning
	// number: how many references per second one service instance absorbs.
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*refsPerPublish)/sec, "refs/s")
	}
}
